//! The NUcache keyed-cache state machine: MainWays + DeliWays.

use crate::config::{ConfigError, KernelConfig, SelectionStrategy};
use crate::monitor::NextUseMonitor;
use crate::selector::{build_candidates, evaluate_chosen, select_classes, Candidate, Selection};
use crate::tracker::DelinquentTracker;
use alloc::collections::{BTreeMap, BTreeSet};
use alloc::vec;
use alloc::vec::Vec;
use core::fmt::Debug;
use core::mem;

/// Candidate classes included per [`EpochSummary`] snapshot; enough to
/// cover every realistic chosen set (DeliWays ≤ 16) with headroom for
/// the rejected tail the cost-benefit analysis argued about.
const TELEMETRY_TOP_CLASSES: usize = 16;

/// Mask with the low `n` bits set (`n` up to 64).
#[inline]
const fn low_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Which region of a set an entry was found in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The LRU-managed MainWays, where every entry is inserted.
    Main,
    /// The FIFO-managed DeliWays, holding retained evictions of chosen
    /// classes.
    Deli,
}

/// An entry that left the cache: the FIFO drop of a retained entry, a
/// MainWays eviction of an unchosen class, or an explicit
/// [`remove`](NucacheKernel::remove).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<V, C> {
    /// The key the entry was stored under.
    pub key: u64,
    /// The insertion class it was inserted with.
    pub class: C,
    /// The caller's value.
    pub value: V,
}

/// Result of a [`get`](NucacheKernel::get).
#[derive(Debug)]
pub enum Lookup<'a, V, C> {
    /// The key is resident.
    Hit {
        /// Mutable access to the stored value (e.g. to set a dirty flag).
        value: &'a mut V,
        /// Where the entry was found *before* any hit-promotion moved it.
        region: Region,
        /// With `promote_on_deli_hit`, promoting a DeliWays hit back into
        /// the MainWays can displace another entry out of the cache; it
        /// is reported here.
        evicted: Option<Evicted<V, C>>,
    },
    /// The key is not resident. The kernel has recorded the miss (class
    /// delinquency + Next-Use); the caller decides whether to
    /// [`put`](NucacheKernel::put).
    Miss,
}

impl<V, C> Lookup<'_, V, C> {
    /// Whether the lookup hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, Lookup::Hit { .. })
    }
}

/// One resident entry's bookkeeping (tag + caller state).
#[derive(Debug, Clone)]
struct Stored<V, C> {
    class: C,
    value: V,
}

/// An entry pulled out of the array during replacement.
#[derive(Debug)]
struct Displaced<V, C> {
    tag: u64,
    class: C,
    value: V,
}

/// Epoch-boundary telemetry snapshot, buffered while telemetry is
/// enabled and drained with [`NucacheKernel::drain_epochs`]. Values are
/// captured exactly as the selector saw them (before the epoch decays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSummary<C> {
    /// Selection epochs completed, starting at 1.
    pub epoch: u64,
    /// Accesses in the decayed selection window.
    pub window_accesses: u64,
    /// The chosen classes, ascending.
    pub chosen: Vec<C>,
    /// The selection's objective value (expected DeliWays hits).
    pub expected_hits: u64,
    /// The extra lifetime (set-accesses) of the chosen set.
    pub extra_lifetime: u64,
    /// Cumulative DeliWays hits at the snapshot.
    pub deli_hits: u64,
    /// Cumulative DeliWays fills at the snapshot.
    pub deli_fills: u64,
    /// Valid DeliWays entries at the snapshot.
    pub deli_occupancy: u64,
    /// Total DeliWays slots.
    pub deli_capacity: u64,
    /// The top candidate classes by combined fills.
    pub top_classes: Vec<ClassSnapshot<C>>,
}

/// One candidate class inside an [`EpochSummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSnapshot<C> {
    /// The insertion class.
    pub class: C,
    /// Combined fills (misses + DeliWays insertions) this window.
    pub fills: u64,
    /// Whether the selection admitted the class.
    pub chosen: bool,
    /// Next-Use samples recorded for the class.
    pub samples: u64,
    /// 25th percentile Next-Use distance, if sampled.
    pub p25: Option<u64>,
    /// Median Next-Use distance, if sampled.
    pub p50: Option<u64>,
    /// 75th percentile Next-Use distance, if sampled.
    pub p75: Option<u64>,
    /// 90th percentile Next-Use distance, if sampled.
    pub p90: Option<u64>,
}

/// Everything one deferred selection epoch needs, taken out of the
/// kernel by [`NucacheKernel::take_epoch_inputs`] so the selection can
/// be computed with no access to the kernel at all (in the concurrent
/// front-end: outside the shard lock), then handed back to
/// [`NucacheKernel::install_selection`].
#[derive(Debug, Clone)]
pub struct EpochInputs<C> {
    /// The epoch this take opened (1-based).
    epoch: u64,
    deli_ways: usize,
    strategy: SelectionStrategy,
    /// Per-epoch selection seed (`config.seed ^ epoch`).
    seed: u64,
    /// Access denominator of the decayed window, as the selector saw it.
    accesses: u64,
    candidates: Vec<Candidate<C>>,
    /// Pre-decay telemetry snapshot with the selection-dependent fields
    /// left at their previous-epoch values; install patches them.
    summary: Option<EpochSummary<C>>,
}

impl<C: Copy + Ord + Debug> EpochInputs<C> {
    /// The selection epoch these inputs belong to (1-based).
    pub const fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The candidate classes the selection will choose from.
    pub fn candidates(&self) -> &[Candidate<C>] {
        &self.candidates
    }

    /// Runs the selection — a pure function of these inputs, so it can
    /// execute on any thread. Bit-identical to what the inline path
    /// would have computed at the same epoch boundary.
    pub fn compute(&self) -> Selection<C> {
        select_classes(
            &self.candidates,
            self.deli_ways,
            self.accesses.max(1),
            self.strategy,
            self.seed,
        )
    }
}

/// Counter snapshots for the audit oracle's monotonicity checks.
///
/// Each field records the value at the last check; counters must never
/// decrease between checks within an epoch. The decay at each selection
/// epoch (and an explicit stats reset) legitimately shrinks them, so
/// both paths refresh the snapshot via `audit_snapshot`.
#[derive(Debug, Clone, Default)]
struct EpochAudit {
    accesses: u64,
    deli_hits: u64,
    deli_fills: u64,
    window_accesses: u64,
    recorded: u64,
    matched: u64,
    /// Monitor counters at the start of the current decay window, for
    /// the bounded matched-vs-recorded check.
    window_recorded: u64,
    window_matched: u64,
    epoch_checks: u64,
}

/// Naive reference model of residency, mirrored on every array
/// operation while auditing is enabled. Divergence panics at the
/// faulting operation.
#[derive(Debug, Clone, Default)]
struct Mirror {
    /// Resident tags per set.
    resident: Vec<BTreeSet<u64>>,
    /// Mirrored-and-compared operations.
    ops: u64,
}

/// An embeddable NUcache: a set-associative keyed cache whose ways are
/// split into MainWays (LRU, every entry) and DeliWays (FIFO, only
/// entries of the currently chosen insertion classes, entered on
/// MainWays eviction). A sampled Next-Use monitor and a per-class miss
/// tracker feed the epoch-based cost-benefit class selection.
///
/// `V` is the caller's value type, stored inline; `C` is the insertion
/// class (defaults to [`InsertionClass`](crate::InsertionClass); the
/// simulator instantiates a program-counter newtype).
///
/// Keys are plain `u64`s; the low `log2(sets)` bits index the set and
/// the rest are the tag, so keys must be unique (hand the kernel a line
/// address, an object id, a hash of a URL — anything stable).
///
/// # Allocation behaviour
///
/// A `get` that hits in the MainWays allocates nothing: it updates an
/// LRU stamp and (on 1-in-`2^monitor_shift` sampled sets) bumps a
/// preallocated clock. Every tolerated exception is enumerated here,
/// carries an `// audit:allow-alloc(..)` annotation at the site, and is
/// cross-referenced by tag in `crates/audit/hotpath.txt` — the
/// `nucache-audit effects` gate keeps all three in sync:
///
/// * `epoch-selection-scratch` — every `epoch_len`-th access runs the
///   selection pass, which builds candidate and telemetry scratch;
///   amortized over the epoch.
/// * `monitor-histogram-growth` — a Next-Use match in a sampled set may
///   lazily create that class's histogram; bounded by live classes.
/// * `deli-class-counter` — a MainWays retirement bumps a per-class
///   fill counter, creating the entry on a class's first retirement.
/// * `tracker-class-table` — a miss records delinquency into a
///   capacity-capped per-class table, evicting the coldest class.
/// * `audit-mirror-residency` — with [`enable_audit`](Self::enable_audit)
///   on, fills record the tag in a reference residency set; the audit
///   mirror is a test harness and never runs in measured configurations.
///
/// # Examples
///
/// ```
/// use nucache_kernel::{InsertionClass, KernelConfig, Lookup, NucacheKernel};
///
/// let config = KernelConfig::default().with_sets(64).with_ways(8).with_deli_ways(4);
/// let mut cache: NucacheKernel<&'static str> = NucacheKernel::init(config)?;
/// let tenant = InsertionClass::new(1);
/// assert!(!cache.get(0x42, tenant).is_hit());
/// cache.put(0x42, tenant, "session-blob");
/// assert!(cache.get(0x42, tenant).is_hit());
/// cache.remove(0x42);
/// assert!(!cache.get(0x42, tenant).is_hit());
/// # Ok::<(), nucache_kernel::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct NucacheKernel<V, C = crate::InsertionClass> {
    config: KernelConfig,
    set_bits: u32,
    main_ways: usize,
    deli_ways: usize,
    /// Tag per frame (`set * ways + way`); garbage where invalid.
    tags: Vec<u64>,
    /// Valid bitmask per set (bit `w` = way `w` holds an entry).
    valid: Vec<u64>,
    /// Class + caller value per frame; `Some` iff the valid bit is set.
    entries: Vec<Option<Stored<V, C>>>,
    /// LRU stamps for ways `[0, main_ways)` of each set.
    main_touch: Vec<u64>,
    /// FIFO entry stamps for ways `[main_ways, ways)` of each set.
    deli_entry: Vec<u64>,
    stamp: u64,
    monitor: NextUseMonitor<C>,
    tracker: DelinquentTracker<C>,
    /// DeliWays insertions per class this window: a retained class stops
    /// missing, so its continued delinquency (and its true FIFO
    /// pressure) shows up here rather than in the miss tracker.
    deli_fills_by_class: BTreeMap<C, u64>,
    chosen: BTreeSet<C>,
    last_selection: Selection<C>,
    /// Accesses in the current decay window — the denominator the
    /// fill-rate (lifetime) estimate pairs with the fill counts.
    window_accesses: u64,
    accesses_in_epoch: u64,
    epochs: u64,
    hits: u64,
    misses: u64,
    deli_hits: u64,
    deli_fills: u64,
    telemetry: bool,
    /// With deferred selection on, the boundary access snapshots the
    /// epoch inputs here instead of running the selection computation;
    /// an external driver takes them, computes off-thread, installs.
    deferred: bool,
    /// The snapshot awaiting [`NucacheKernel::take_epoch_inputs`].
    pending_inputs: Option<EpochInputs<C>>,
    pending_epochs: Vec<EpochSummary<C>>,
    audit: Option<EpochAudit>,
    mirror: Option<Mirror>,
}

impl<V, C: Copy + Ord + Debug> NucacheKernel<V, C> {
    /// Builds a kernel from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the configuration violates.
    pub fn init(config: KernelConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let set_bits = config.sets.trailing_zeros();
        let frames = config.sets * config.ways;
        let mut entries = Vec::with_capacity(frames);
        entries.resize_with(frames, || None);
        Ok(NucacheKernel {
            set_bits,
            main_ways: config.ways - config.deli_ways,
            deli_ways: config.deli_ways,
            tags: vec![0; frames],
            valid: vec![0; config.sets],
            entries,
            main_touch: vec![0; frames],
            deli_entry: vec![0; frames],
            stamp: 0,
            monitor: NextUseMonitor::new(
                set_bits,
                config.monitor_shift.min(set_bits),
                config.monitor_depth,
                config.histogram_buckets,
            ),
            tracker: DelinquentTracker::new(256.max(config.max_candidates)),
            deli_fills_by_class: BTreeMap::new(),
            chosen: BTreeSet::new(),
            last_selection: Selection { chosen: Vec::new(), expected_hits: 0, extra_lifetime: 0 },
            window_accesses: 0,
            accesses_in_epoch: 0,
            epochs: 0,
            hits: 0,
            misses: 0,
            deli_hits: 0,
            deli_fills: 0,
            telemetry: false,
            deferred: false,
            pending_inputs: None,
            pending_epochs: Vec::new(),
            audit: None,
            mirror: None,
            config,
        })
    }

    // ---- geometry helpers -------------------------------------------------

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        (key & low_mask(self.set_bits as usize)) as usize
    }

    #[inline]
    fn tag_of(&self, key: u64) -> u64 {
        key >> self.set_bits
    }

    #[inline]
    fn key_of(&self, set: usize, tag: u64) -> u64 {
        (tag << self.set_bits) | set as u64
    }

    #[inline]
    fn frame(&self, set: usize, way: usize) -> usize {
        set * self.config.ways + way
    }

    /// Resident way holding `tag` in `set`, if any.
    #[inline]
    fn find(&mut self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.config.ways;
        let mut m = self.valid[set];
        let mut found = None;
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            if self.tags[base + w] == tag {
                found = Some(w);
                break;
            }
            m &= m - 1;
        }
        if let Some(mir) = &mut self.mirror {
            mir.ops += 1;
            assert_eq!(
                mir.resident[set].contains(&tag),
                found.is_some(),
                "audit: find({set}, {tag:#x}) diverged from the reference model"
            );
        }
        found
    }

    /// Installs an entry into a frame, returning whatever it displaced.
    fn fill_frame(
        &mut self,
        set: usize,
        way: usize,
        tag: u64,
        class: C,
        value: V,
    ) -> Option<Displaced<V, C>> {
        let f = self.frame(set, way);
        let old_tag = self.tags[f];
        let displaced = self.entries[f].take().map(|s| Displaced {
            tag: old_tag,
            class: s.class,
            value: s.value,
        });
        let had = self.valid[set] & (1u64 << way) != 0;
        debug_assert_eq!(had, displaced.is_some(), "valid bit and entry storage agree");
        self.tags[f] = tag;
        self.entries[f] = Some(Stored { class, value });
        self.valid[set] |= 1u64 << way;
        if let Some(mir) = &mut self.mirror {
            mir.ops += 1;
            if let Some(d) = &displaced {
                assert!(
                    mir.resident[set].remove(&d.tag),
                    "audit: displaced tag {:#x} missing from the reference model",
                    d.tag
                );
            }
            assert!(
                // audit:allow-alloc(audit mirror residency set, populated only when enable_audit is on)
                mir.resident[set].insert(tag),
                "audit: fill of already-resident tag {tag:#x} in set {set}"
            );
        }
        displaced
    }

    /// Clears a frame, returning its entry if it was valid.
    fn invalidate(&mut self, set: usize, way: usize) -> Option<Displaced<V, C>> {
        let f = self.frame(set, way);
        if self.valid[set] & (1u64 << way) == 0 {
            return None;
        }
        self.valid[set] &= !(1u64 << way);
        let tag = self.tags[f];
        let stored = self.entries[f].take().expect("valid frame holds an entry");
        if let Some(mir) = &mut self.mirror {
            mir.ops += 1;
            assert!(
                mir.resident[set].remove(&tag),
                "audit: invalidated tag {tag:#x} missing from the reference model"
            );
        }
        Some(Displaced { tag, class: stored.class, value: stored.value })
    }

    /// First invalid way among the MainWays of `set`.
    #[inline]
    fn free_main_way(&self, set: usize) -> Option<usize> {
        let free = !self.valid[set] & low_mask(self.main_ways);
        (free != 0).then(|| free.trailing_zeros() as usize)
    }

    fn touch_main(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        let f = self.frame(set, way);
        self.main_touch[f] = self.stamp;
    }

    /// LRU victim among the MainWays of `set` (which are full).
    fn main_victim(&self, set: usize) -> usize {
        (0..self.main_ways)
            .min_by_key(|&w| self.main_touch[self.frame(set, w)])
            .expect("at least one MainWay")
    }

    /// FIFO victim among the DeliWays of `set`, or the first invalid one.
    fn deli_slot(&self, set: usize) -> usize {
        debug_assert!(self.deli_ways > 0, "deli_slot needs DeliWays");
        let free = (!self.valid[set] >> self.main_ways) & low_mask(self.deli_ways);
        if free != 0 {
            return self.main_ways + free.trailing_zeros() as usize;
        }
        (self.main_ways..self.main_ways + self.deli_ways)
            .min_by_key(|&w| self.deli_entry[self.frame(set, w)])
            .expect("deli_ways > 0 when called")
    }

    /// Handles an entry leaving the MainWays: moves it into the DeliWays
    /// if its class is chosen (returning the entry the FIFO dropped, if
    /// any) or lets it leave the cache. Either way the monitor sees the
    /// eviction — Next-Use is defined from MainWays eviction for every
    /// entry, so the selector can discover classes that are not
    /// currently chosen.
    fn retire_from_main(&mut self, set: usize, victim: Displaced<V, C>) -> Option<Evicted<V, C>> {
        let key = self.key_of(set, victim.tag);
        self.monitor.on_evict(key, victim.class);
        if self.deli_ways == 0 || !self.chosen.contains(&victim.class) {
            return Some(Evicted { key, class: victim.class, value: victim.value });
        }
        let slot = self.deli_slot(set);
        let dropped = self.fill_frame(set, slot, victim.tag, victim.class, victim.value);
        self.stamp += 1;
        let f = self.frame(set, slot);
        self.deli_entry[f] = self.stamp;
        self.deli_fills += 1;
        // audit:allow-alloc(per-class fill counter, one entry per live class)
        *self.deli_fills_by_class.entry(victim.class).or_insert(0) += 1;
        // An entry aging out of the DeliWays FIFO leaves the cache for
        // good; its Next-Use from this (second) eviction is not what the
        // selector models, so it is not re-recorded.
        dropped.map(|d| Evicted { key: self.key_of(set, d.tag), class: d.class, value: d.value })
    }

    // ---- the keyed API ----------------------------------------------------

    /// Looks up `key`, advancing the access clock, the epoch counter and
    /// the replacement state exactly as a demand access would.
    ///
    /// On a hit the stored value is returned mutably (update it in
    /// place — e.g. a dirty flag or payload refresh). On a miss the
    /// kernel records the delinquency of `class` and any Next-Use match,
    /// then leaves the decision to insert to the caller
    /// ([`put`](NucacheKernel::put)).
    // audit:hot-path
    pub fn get(&mut self, key: u64, class: C) -> Lookup<'_, V, C> {
        let set = self.set_of(key);
        let tag = self.tag_of(key);
        self.monitor.on_set_access(key);
        self.window_accesses += 1;
        self.epoch_tick();

        let Some(way) = self.find(set, tag) else {
            self.misses += 1;
            self.tracker.record_miss(class);
            self.monitor.on_next_use(key);
            return Lookup::Miss;
        };

        self.hits += 1;
        let mut region = Region::Main;
        let mut final_way = way;
        let mut evicted = None;
        if way < self.main_ways {
            self.touch_main(set, way);
        } else {
            region = Region::Deli;
            self.deli_hits += 1;
            // A DeliWays hit is a successful next use after a MainWays
            // eviction: feed it to the monitor so chosen classes keep
            // their Next-Use evidence instead of oscillating out.
            self.monitor.on_next_use(key);
            if !self.config.promote_on_deli_hit && self.config.deli_hit_refresh {
                // Second-chance FIFO: an actively reused entry moves to
                // the FIFO tail instead of aging out on schedule.
                self.stamp += 1;
                let f = self.frame(set, way);
                self.deli_entry[f] = self.stamp;
            }
            if self.config.promote_on_deli_hit && self.main_ways > 0 {
                // Promote the hit entry back into the MainWays: free its
                // DeliWays slot, then displace the MainWays LRU victim
                // through the normal retirement path (which
                // admission-checks it into the freed slot only if its
                // class is chosen).
                let promoted = self.invalidate(set, way).expect("hit way valid");
                let mv = self.free_main_way(set).unwrap_or_else(|| self.main_victim(set));
                if let Some(victim) = self.invalidate(set, mv) {
                    evicted = self.retire_from_main(set, victim);
                }
                self.fill_frame(set, mv, promoted.tag, promoted.class, promoted.value);
                self.touch_main(set, mv);
                final_way = mv;
            }
        }
        if self.audit.is_some() {
            self.audit_access_check();
        }
        let f = self.frame(set, final_way);
        let value = &mut self.entries[f].as_mut().expect("hit entry resident").value;
        Lookup::Hit { value, region, evicted }
    }

    /// Inserts `key` with `class` and `value`, filling into the MainWays
    /// (an invalid way first, else the LRU victim, whose entry retires —
    /// possibly into the DeliWays). Returns the entry that left the
    /// cache, if any.
    ///
    /// If `key` is already resident its class and value are replaced in
    /// place without touching replacement state.
    // audit:hot-path
    pub fn put(&mut self, key: u64, class: C, value: V) -> Option<Evicted<V, C>> {
        let set = self.set_of(key);
        let tag = self.tag_of(key);
        if let Some(way) = self.find(set, tag) {
            let f = self.frame(set, way);
            let stored = self.entries[f].as_mut().expect("resident entry");
            stored.class = class;
            stored.value = value;
            return None;
        }
        let (way, leaving) = match self.free_main_way(set) {
            Some(w) => (w, None),
            None => {
                let w = self.main_victim(set);
                let victim = self.invalidate(set, w).expect("MainWays full, victim valid");
                (w, self.retire_from_main(set, victim))
            }
        };
        self.fill_frame(set, way, tag, class, value);
        self.touch_main(set, way);
        if self.audit.is_some() {
            self.audit_access_check();
        }
        leaving
    }

    /// Removes `key` if resident, without recording an eviction in the
    /// monitor (an explicit removal is not a capacity eviction, so it
    /// must not contribute Next-Use evidence).
    // audit:hot-path
    pub fn remove(&mut self, key: u64) -> Option<Evicted<V, C>> {
        let set = self.set_of(key);
        let tag = self.tag_of(key);
        let way = self.find(set, tag)?;
        self.invalidate(set, way).map(|d| Evicted {
            key: self.key_of(set, d.tag),
            class: d.class,
            value: d.value,
        })
    }

    /// Whether `key` is resident, without perturbing any replacement,
    /// monitor or epoch state.
    pub fn contains(&self, key: u64) -> bool {
        self.peek(key).is_some()
    }

    /// The stored value of `key`, without perturbing any state.
    pub fn peek(&self, key: u64) -> Option<&V> {
        let set = self.set_of(key);
        let tag = self.tag_of(key);
        let base = set * self.config.ways;
        let mut m = self.valid[set];
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            if self.tags[base + w] == tag {
                return self.entries[base + w].as_ref().map(|s| &s.value);
            }
            m &= m - 1;
        }
        None
    }

    // ---- epoch machinery --------------------------------------------------

    fn epoch_tick(&mut self) {
        self.accesses_in_epoch += 1;
        if self.accesses_in_epoch >= self.config.epoch_len {
            if self.deferred {
                // Deferred mode: snapshot the selection inputs at this
                // exact point — the same point the inline path runs the
                // whole selection — and leave them for an external
                // driver ([`Self::take_epoch_inputs`]). Only one
                // snapshot is held: if the driver has not taken the
                // previous one yet, accesses keep accumulating and the
                // first tick after the take opens the next epoch.
                if self.pending_inputs.is_none() {
                    self.accesses_in_epoch = 0;
                    let inputs = self.build_epoch_inputs();
                    self.pending_inputs = Some(inputs);
                }
                return;
            }
            self.accesses_in_epoch = 0;
            self.run_selection();
        }
    }

    /// Opens a selection epoch: bumps the epoch counter and builds the
    /// candidate list from the pre-decay observation state. Returns the
    /// ranked `(class, fills)` list, the candidates and the access
    /// denominator the selector pairs with them.
    #[allow(clippy::type_complexity)]
    fn begin_epoch(&mut self) -> (Vec<(C, u64)>, Vec<Candidate<C>>, u64) {
        self.epochs += 1;
        let pool = match self.config.strategy {
            SelectionStrategy::Exhaustive => self.config.oracle_pool,
            _ => self.config.max_candidates,
        };
        // Candidate fills combine demand misses with DeliWays insertions:
        // for an unretained class the former dominates; for a retained
        // class the latter is both its continued-delinquency evidence and
        // its actual FIFO pressure. Without the combination, successfully
        // retained classes stop missing, vanish from the candidate list
        // and selection oscillates.
        let mut combined: BTreeMap<C, u64> = self.deli_fills_by_class.clone();
        for (class, misses) in self.tracker.top_k(self.tracker.len()) {
            *combined.entry(class).or_insert(0) += misses;
        }
        let mut top: Vec<(C, u64)> = combined.into_iter().collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(pool);
        let candidates = build_candidates(&top, self.monitor.histograms());
        // Fill counts and the access denominator are both global over the
        // same decayed window, so their ratio is the per-set fill rate;
        // the monitor's per-set-clock histograms use the same currency.
        (top, candidates, self.window_accesses)
    }

    /// Closes a selection epoch: decays every observation structure and
    /// refreshes the audit counter snapshots.
    fn decay_window(&mut self) {
        self.tracker.decay();
        self.monitor.decay();
        self.deli_fills_by_class.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
        self.window_accesses /= 2;
        if self.audit.is_some() {
            self.audit_snapshot();
        }
    }

    // audit:allow-alloc(epoch-boundary selection scratch, amortized over epoch_len accesses)
    fn run_selection(&mut self) {
        let (top, candidates, accesses_global) = self.begin_epoch();
        self.last_selection = select_classes(
            &candidates,
            self.deli_ways,
            accesses_global.max(1),
            self.config.strategy,
            self.config.seed ^ self.epochs,
        );
        self.chosen = self.last_selection.chosen.iter().copied().collect();
        if self.telemetry {
            let summary = self.epoch_summary(&top);
            self.pending_epochs.push(summary);
        }
        if self.audit.is_some() {
            self.audit_epoch_observe();
            self.audit_selection_check(&candidates, accesses_global);
        }
        self.decay_window();
    }

    // ---- deferred selection (concurrent front-end) ------------------------

    /// Switches epoch-boundary selection between inline (the default:
    /// the boundary access runs selection before returning) and
    /// deferred: the boundary access snapshots the selection *inputs*
    /// (candidates, access denominator, telemetry) at the exact point
    /// the inline path would have run selection, then marks it
    /// [due](Self::selection_due); an external driver calls
    /// [`take_epoch_inputs`](Self::take_epoch_inputs), runs
    /// [`EpochInputs::compute`] with no access to the kernel at all,
    /// and [installs](Self::install_selection) the result.
    ///
    /// Deferred mode exists for concurrent serving: the selection
    /// *computation* is the expensive epoch task (O(candidates ×
    /// deli_ways × buckets), exponential for the exhaustive oracle), so
    /// a sharded front-end runs it on a background thread outside the
    /// shard lock. The boundary access still pays the O(live classes)
    /// snapshot-and-decay, exactly as it does inline. Between the
    /// snapshot and the install the kernel keeps admitting DeliWays
    /// entries under the previous chosen set — a bounded staleness of
    /// however many accesses land in that gap.
    ///
    /// Disabling deferred mode discards any pending snapshot (that
    /// epoch's selection never installs; the chosen set persists).
    pub fn set_deferred_selection(&mut self, deferred: bool) {
        self.deferred = deferred;
        if !deferred {
            self.pending_inputs = None;
        }
    }

    /// Whether epoch selection is deferred to an external driver.
    pub const fn deferred_selection(&self) -> bool {
        self.deferred
    }

    /// Whether a deferred epoch snapshot is waiting to be
    /// [taken](Self::take_epoch_inputs). Always `false` in inline mode.
    pub const fn selection_due(&self) -> bool {
        self.pending_inputs.is_some()
    }

    /// Snapshots one selection epoch: opens the epoch, builds the
    /// candidate list and telemetry from the pre-decay observation
    /// state, observes the audit invariants, then decays the window —
    /// the inline boundary sequence minus the selection computation and
    /// install, which the caller performs from the returned value.
    // audit:allow-alloc(epoch-boundary selection scratch, amortized over epoch_len accesses)
    fn build_epoch_inputs(&mut self) -> EpochInputs<C> {
        let (top, candidates, accesses) = self.begin_epoch();
        // Telemetry values must be what the selector saw (pre-decay);
        // the selection-dependent fields are patched in at install.
        let summary = if self.telemetry { Some(self.epoch_summary(&top)) } else { None };
        if self.audit.is_some() {
            self.audit_epoch_observe();
        }
        self.decay_window();
        EpochInputs {
            epoch: self.epochs,
            deli_ways: self.deli_ways,
            strategy: self.config.strategy,
            seed: self.config.seed ^ self.epochs,
            accesses,
            candidates,
            summary,
        }
    }

    /// Takes the pending deferred epoch snapshot, if any: the caller
    /// runs [`EpochInputs::compute`] with no access to the kernel at
    /// all, then hands the result back via
    /// [`install_selection`](Self::install_selection).
    ///
    /// The snapshot was built — and the observation window decayed — by
    /// the access that crossed the epoch boundary, at the exact point
    /// the inline path runs selection, so the computed selection is
    /// bit-identical to inline's. Accesses since that boundary count
    /// toward the next epoch, again exactly as inline.
    pub fn take_epoch_inputs(&mut self) -> Option<EpochInputs<C>> {
        self.pending_inputs.take()
    }

    /// Installs a selection computed from
    /// [`take_epoch_inputs`](Self::take_epoch_inputs): swaps the chosen
    /// class set, completes and buffers the epoch telemetry, and (while
    /// auditing) verifies the selection objective against the taken
    /// candidates.
    ///
    /// The installed selection is bit-identical to what the inline path
    /// would have chosen (the snapshot is built at the inline boundary
    /// point). The only inline/deferred divergence is staleness of the
    /// chosen set between the boundary and this install: accesses in
    /// that gap — including the tail of the boundary access itself, if
    /// it retires a MainWays entry (e.g. a DeliWays-hit promotion) —
    /// make their DeliWays admission decisions under the previous
    /// chosen set. The equivalence tests pin this: with installs driven
    /// before the next chosen-consulting operation, deferred equals
    /// inline bit-for-bit, telemetry included.
    pub fn install_selection(&mut self, inputs: EpochInputs<C>, selection: Selection<C>) {
        self.chosen = selection.chosen.iter().copied().collect();
        self.last_selection = selection;
        if self.audit.is_some() {
            self.audit_selection_check(&inputs.candidates, inputs.accesses);
        }
        if self.telemetry {
            if let Some(mut summary) = inputs.summary {
                summary.chosen = self.chosen_classes();
                summary.expected_hits = self.last_selection.expected_hits;
                summary.extra_lifetime = self.last_selection.extra_lifetime;
                for snap in &mut summary.top_classes {
                    snap.chosen = self.chosen.contains(&snap.class);
                }
                self.pending_epochs.push(summary);
            }
        }
    }

    /// Builds the telemetry snapshot of the selection that just ran.
    /// Called before the epoch decays, so fills, window accesses and
    /// histogram summaries are exactly what the selector saw.
    fn epoch_summary(&self, top: &[(C, u64)]) -> EpochSummary<C> {
        let quant = |class: C, p: f64| self.monitor.histogram(class).and_then(|h| h.quantile(p));
        let top_classes: Vec<ClassSnapshot<C>> = top
            .iter()
            .take(TELEMETRY_TOP_CLASSES)
            .map(|&(class, fills)| ClassSnapshot {
                class,
                fills,
                chosen: self.chosen.contains(&class),
                samples: self.monitor.histogram(class).map_or(0, |h| h.total()),
                p25: quant(class, 0.25),
                p50: quant(class, 0.5),
                p75: quant(class, 0.75),
                p90: quant(class, 0.9),
            })
            .collect();
        EpochSummary {
            epoch: self.epochs,
            window_accesses: self.window_accesses,
            chosen: self.chosen_classes(),
            expected_hits: self.last_selection.expected_hits,
            extra_lifetime: self.last_selection.extra_lifetime,
            deli_hits: self.deli_hits,
            deli_fills: self.deli_fills,
            deli_occupancy: self.deli_occupancy(),
            deli_capacity: self.deli_capacity(),
            top_classes,
        }
    }

    // ---- audit oracle -----------------------------------------------------

    /// Enables the differential audit oracle: every array operation is
    /// mirrored into a naive reference model of residency, and each
    /// selection epoch verifies the kernel's invariants (DeliWays
    /// occupancy within capacity, monotone counters, selection objective
    /// reproducible from the candidates). Violations panic at the
    /// faulting operation.
    pub fn enable_audit(&mut self) {
        let mut mirror = Mirror { resident: vec![BTreeSet::new(); self.config.sets], ops: 0 };
        for set in 0..self.config.sets {
            let base = set * self.config.ways;
            let mut m = self.valid[set];
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                mirror.resident[set].insert(self.tags[base + w]);
                m &= m - 1;
            }
        }
        self.mirror = Some(mirror);
        self.audit = Some(EpochAudit::default());
        self.audit_snapshot();
    }

    /// Disables the audit oracle and drops its mirror state.
    pub fn disable_audit(&mut self) {
        self.audit = None;
        self.mirror = None;
    }

    /// Whether the audit oracle is currently enabled.
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// Array operations mirrored into the reference model so far.
    pub fn audit_ops(&self) -> u64 {
        self.mirror.as_ref().map_or(0, |m| m.ops)
    }

    /// Epoch-level invariant checks performed so far.
    pub fn epoch_checks(&self) -> u64 {
        self.audit.as_ref().map_or(0, |a| a.epoch_checks)
    }

    /// Refreshes the oracle's counter snapshots to the current values
    /// (after the epoch decay or a stats reset, which legitimately move
    /// counters backwards).
    fn audit_snapshot(&mut self) {
        let accesses = self.hits + self.misses;
        let (dh, df, wa) = (self.deli_hits, self.deli_fills, self.window_accesses);
        let (rec, mat) = (self.monitor.recorded(), self.monitor.matched());
        if let Some(a) = &mut self.audit {
            a.accesses = accesses;
            a.deli_hits = dh;
            a.deli_fills = df;
            a.window_accesses = wa;
            a.recorded = rec;
            a.matched = mat;
            a.window_recorded = rec;
            a.window_matched = mat;
        }
    }

    /// Per-access oracle checks: counters monotone since the last check
    /// and DeliWays hits within total hits.
    #[cold]
    #[inline(never)]
    fn audit_access_check(&mut self) {
        let (hits, misses) = (self.hits, self.misses);
        let (dh, df, wa) = (self.deli_hits, self.deli_fills, self.window_accesses);
        let (rec, mat) = (self.monitor.recorded(), self.monitor.matched());
        let Some(a) = &mut self.audit else { return };
        assert!(dh <= hits, "audit: DeliWays hits ({dh}) exceed total hits ({hits})");
        assert!(
            hits + misses >= a.accesses,
            "audit: access counter moved backwards within an epoch"
        );
        assert!(
            dh >= a.deli_hits && df >= a.deli_fills,
            "audit: DeliWays counters moved backwards within an epoch"
        );
        assert!(
            wa >= a.window_accesses,
            "audit: window access counter moved backwards within an epoch"
        );
        assert!(
            rec >= a.recorded && mat >= a.matched,
            "audit: monitor counters moved backwards within an epoch"
        );
        a.accesses = hits + misses;
        a.deli_hits = dh;
        a.deli_fills = df;
        a.window_accesses = wa;
        a.recorded = rec;
        a.matched = mat;
    }

    /// Epoch-boundary oracle checks over the *observation* state, run
    /// before the decay so occupancy and monitor state are what the
    /// selector saw. Selection-independent, so the deferred path can run
    /// it at take time.
    fn audit_epoch_observe(&mut self) {
        let capacity = self.deli_capacity();
        let occ = self.deli_occupancy();
        assert!(occ <= capacity, "audit: DeliWays occupancy {occ} exceeds capacity {capacity}");
        // Every monitor match consumes a buffered eviction recorded
        // either in this decay window or already buffered when it
        // started.
        let buffer_cap = (self.config.monitor_depth * self.monitor.sampled_sets()) as u64;
        let (rec, mat) = (self.monitor.recorded(), self.monitor.matched());
        let a = self.audit.as_mut().expect("epoch check runs only while auditing");
        let window_matched = mat.saturating_sub(a.window_matched);
        let window_recorded = rec.saturating_sub(a.window_recorded);
        assert!(
            window_matched <= window_recorded + buffer_cap,
            "audit: {window_matched} monitor matches cannot come from {window_recorded} \
             recorded evictions plus a buffer of {buffer_cap}"
        );
        a.epoch_checks += 1;
    }

    /// Epoch-boundary oracle checks over the *selection* outcome, against
    /// the candidates and access denominator the selector actually used
    /// (the deferred path replays them from the taken inputs).
    fn audit_selection_check(&mut self, candidates: &[Candidate<C>], accesses: u64) {
        let from_selection: BTreeSet<C> = self.last_selection.chosen.iter().copied().collect();
        assert!(
            self.chosen == from_selection,
            "audit: admitted class set {:?} disagrees with the selection {:?}",
            self.chosen,
            self.last_selection.chosen
        );
        // The analytic strategies report an objective value; re-deriving
        // it for the chosen set from the same candidates must reproduce
        // it.
        let analytic = matches!(
            self.config.strategy,
            SelectionStrategy::CostBenefit | SelectionStrategy::Exhaustive
        );
        if analytic && !self.last_selection.chosen.is_empty() {
            let recomputed = evaluate_chosen(
                candidates,
                &self.last_selection.chosen,
                self.deli_ways,
                accesses.max(1),
            );
            assert_eq!(
                recomputed,
                Some((self.last_selection.expected_hits, self.last_selection.extra_lifetime)),
                "audit: selection objective not reproducible from the candidates"
            );
        }
    }

    // ---- introspection ----------------------------------------------------

    /// The active configuration.
    pub const fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Number of MainWays per set.
    pub const fn main_ways(&self) -> usize {
        self.main_ways
    }

    /// Number of DeliWays per set.
    pub const fn deli_ways(&self) -> usize {
        self.deli_ways
    }

    /// Total entry slots (`sets * ways`).
    pub fn capacity(&self) -> usize {
        self.config.sets * self.config.ways
    }

    /// Resident entries across all sets.
    pub fn len(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.valid.iter().all(|&v| v == 0)
    }

    /// Lookups that found their key since construction (or the last
    /// [`reset_stats`](NucacheKernel::reset_stats)).
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits satisfied from the DeliWays.
    pub const fn deli_hits(&self) -> u64 {
        self.deli_hits
    }

    /// Entries moved from MainWays into DeliWays.
    pub const fn deli_fills(&self) -> u64 {
        self.deli_fills
    }

    /// Completed selection epochs.
    pub const fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Classes currently admitted to the DeliWays, ascending.
    pub fn chosen_classes(&self) -> Vec<C> {
        let mut v: Vec<C> = self.chosen.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// The outcome of the most recent selection pass.
    pub const fn last_selection(&self) -> &Selection<C> {
        &self.last_selection
    }

    /// Read access to the per-class miss tracker.
    pub const fn tracker(&self) -> &DelinquentTracker<C> {
        &self.tracker
    }

    /// Read access to the Next-Use monitor.
    pub const fn monitor(&self) -> &NextUseMonitor<C> {
        &self.monitor
    }

    /// Current combined fill counts (demand misses + DeliWays
    /// insertions) per class, descending — the quantity candidate
    /// ranking and the lifetime cost model use. Exposed for diagnostics
    /// and tests.
    pub fn combined_fills(&self) -> Vec<(C, u64)> {
        let mut combined: BTreeMap<C, u64> = self.deli_fills_by_class.clone();
        for (class, misses) in self.tracker.top_k(self.tracker.len()) {
            *combined.entry(class).or_insert(0) += misses;
        }
        let mut v: Vec<(C, u64)> = combined.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Access denominator the selector pairs with
    /// [`combined_fills`](NucacheKernel::combined_fills) (accesses in
    /// the decay window).
    pub const fn selection_accesses(&self) -> u64 {
        self.window_accesses
    }

    /// Valid entries currently resident in the DeliWays across all sets.
    pub fn deli_occupancy(&self) -> u64 {
        self.valid
            .iter()
            .map(|&v| ((v >> self.main_ways) & low_mask(self.deli_ways)).count_ones() as u64)
            .sum()
    }

    /// Total DeliWays slots across all sets.
    pub fn deli_capacity(&self) -> u64 {
        (self.deli_ways * self.config.sets) as u64
    }

    /// Clears the hit/miss and DeliWays counters while keeping contents
    /// and all learning state (tracker, monitor, chosen classes, epoch
    /// position) — mirroring how a warmup phase is excluded from
    /// measurement.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.deli_hits = 0;
        self.deli_fills = 0;
        if self.audit.is_some() {
            self.audit_snapshot();
        }
    }

    /// Enables or disables epoch telemetry. Disabling clears anything
    /// buffered. Off by default: the only cost while disabled is one
    /// branch per epoch.
    pub fn set_telemetry(&mut self, enabled: bool) {
        self.telemetry = enabled;
        if !enabled {
            self.pending_epochs.clear();
        }
    }

    /// Takes every buffered [`EpochSummary`] (empty while telemetry is
    /// disabled).
    pub fn drain_epochs(&mut self) -> Vec<EpochSummary<C>> {
        mem::take(&mut self.pending_epochs)
    }

    /// Overrides the chosen class set until the next selection epoch
    /// recomputes it.
    ///
    /// Intended for tests and for operational pinning (e.g. forcing a
    /// tenant's entries to be retained while gathering evidence); the
    /// normal path is to let the epoch selection decide.
    pub fn force_chosen(&mut self, classes: &[C]) {
        self.chosen = classes.iter().copied().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InsertionClass;

    type Kernel = NucacheKernel<u32, InsertionClass>;

    fn cfg(sets: usize, ways: usize, deli: usize) -> KernelConfig {
        let mut c = KernelConfig::default()
            .with_sets(sets)
            .with_ways(ways)
            .with_deli_ways(deli)
            .with_epoch_len(1000);
        c.monitor_shift = 0; // observe every set in tests
        c
    }

    fn class(raw: u64) -> InsertionClass {
        InsertionClass::new(raw)
    }

    /// A get-then-put demand access, like the simulator adapter's.
    fn access(k: &mut Kernel, c: u64, key: u64) -> bool {
        if k.get(key, class(c)).is_hit() {
            true
        } else {
            k.put(key, class(c), 0);
            false
        }
    }

    #[test]
    fn basic_hit_miss_and_remove() {
        let mut k = Kernel::init(cfg(16, 4, 2)).expect("valid config");
        assert!(!access(&mut k, 1, 5));
        assert!(access(&mut k, 1, 5));
        assert_eq!((k.hits(), k.misses()), (1, 1));
        assert_eq!(k.len(), 1);
        let gone = k.remove(5).expect("resident");
        assert_eq!(gone.key, 5);
        assert!(k.is_empty());
        assert!(!access(&mut k, 1, 5));
    }

    #[test]
    fn put_replaces_in_place() {
        let mut k = Kernel::init(cfg(16, 4, 2)).expect("valid config");
        k.put(9, class(1), 10);
        assert_eq!(k.put(9, class(2), 20), None);
        assert_eq!(k.peek(9), Some(&20));
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn unchosen_entries_bypass_deliways() {
        let mut k = Kernel::init(cfg(1, 4, 2)).expect("valid config");
        // 2 MainWays, 2 DeliWays; nothing chosen yet, so a working set of
        // 3 keys thrashes the 2 MainWays exactly like a 2-way LRU.
        let mut hits = 0;
        for _ in 0..10 {
            for n in 0..3 {
                if access(&mut k, 1, n) {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 0);
        assert_eq!(k.deli_fills(), 0);
    }

    #[test]
    fn chosen_class_entries_enter_deliways_and_hit() {
        let mut k = Kernel::init(cfg(1, 4, 2)).expect("valid config");
        k.force_chosen(&[class(1)]);
        let mut hits = 0;
        for _ in 0..20 {
            for n in 0..4 {
                if access(&mut k, 1, n) {
                    hits += 1;
                }
            }
        }
        assert!(k.deli_fills() > 0, "chosen entries must enter DeliWays");
        assert!(k.deli_hits() > 0, "DeliWays must produce hits");
        assert!(hits > 40, "retention should convert most misses, got {hits}");
    }

    #[test]
    fn cost_benefit_selection_discovers_loop_class() {
        // Miri runs orders of magnitude slower; shrink the stream and the
        // epoch length together so selection still sees several epochs.
        let (rounds, epoch_len) = if cfg!(miri) { (3_000u64, 500) } else { (30_000u64, 2_000) };
        let mut config = cfg(64, 16, 8);
        config.epoch_len = epoch_len;
        let mut k = Kernel::init(config).expect("valid config");
        let mut stream = 1 << 20;
        for round in 0..rounds {
            access(&mut k, 1, round % 768);
            if round % 2 == 0 {
                access(&mut k, 2, stream);
                stream += 1;
            }
        }
        assert!(k.epochs() >= 2);
        let chosen = k.chosen_classes();
        assert!(chosen.contains(&class(1)), "loop class must be chosen, got {chosen:?}");
        assert!(!chosen.contains(&class(2)), "stream class must not be chosen, got {chosen:?}");
        assert!(k.deli_hits() > 0);
    }

    #[test]
    fn promotion_moves_entry_to_main() {
        let mut config = cfg(1, 4, 2);
        config.promote_on_deli_hit = true;
        let mut k = Kernel::init(config).expect("valid config");
        k.force_chosen(&[class(1)]);
        access(&mut k, 1, 0);
        access(&mut k, 1, 1);
        access(&mut k, 1, 2); // evicts 0 -> DeliWays
        assert_eq!(k.deli_fills(), 1);
        match k.get(0, class(1)) {
            Lookup::Hit { region, .. } => assert_eq!(region, Region::Deli),
            Lookup::Miss => panic!("expected a DeliWays hit"),
        }
        assert_eq!(k.deli_hits(), 1);
        // After promotion, key 0 sits in the MainWays as MRU.
        access(&mut k, 1, 3);
        assert!(access(&mut k, 1, 0));
    }

    #[test]
    fn audited_run_matches_unaudited_and_counts_checks() {
        let (rounds, epoch_len) = if cfg!(miri) { (1_000u64, 100) } else { (10_000u64, 500) };
        let mut config = cfg(16, 8, 4);
        config.epoch_len = epoch_len;
        let run = |audit: bool| {
            let mut k = Kernel::init(config).expect("valid config");
            if audit {
                k.enable_audit();
            }
            for n in 0..rounds {
                access(&mut k, 1 + n % 3, n % 90);
            }
            (
                (k.hits(), k.misses(), k.deli_hits(), k.chosen_classes()),
                k.audit_ops(),
                k.epoch_checks(),
            )
        };
        let (plain, ops0, checks0) = run(false);
        let (audited, ops, checks) = run(true);
        assert_eq!((ops0, checks0), (0, 0));
        assert_eq!(plain, audited, "auditing must not perturb results");
        assert!(ops > 0, "mirror must have been exercised");
        assert!(checks > 0, "epoch invariants must have been checked");
    }

    #[test]
    fn telemetry_emits_one_summary_per_epoch() {
        let (rounds, epoch_len) = if cfg!(miri) { (1_000u64, 200) } else { (10_000u64, 2_000) };
        let mut config = cfg(64, 16, 8);
        config.epoch_len = epoch_len;
        let mut k = Kernel::init(config).expect("valid config");
        k.set_telemetry(true);
        for round in 0..rounds {
            access(&mut k, 1, round % 768);
        }
        let epochs = k.drain_epochs();
        assert_eq!(epochs.len() as u64, k.epochs());
        assert!(!epochs.is_empty());
        let first = &epochs[0];
        assert_eq!(first.epoch, 1);
        assert_eq!(first.deli_capacity, 8 * 64);
        assert!(first.top_classes.iter().any(|c| c.fills > 0));
        for chosen in &first.chosen {
            assert!(first.top_classes.iter().any(|c| c.class == *chosen && c.chosen));
        }
        assert!(k.drain_epochs().is_empty(), "drain consumes the buffer");
    }

    #[test]
    fn reset_stats_keeps_learning_state() {
        let mut config = cfg(16, 4, 2);
        config.epoch_len = 100;
        let mut k = Kernel::init(config).expect("valid config");
        for n in 0..500 {
            access(&mut k, 1, n % 40);
        }
        let epochs = k.epochs();
        k.reset_stats();
        assert_eq!((k.hits(), k.misses(), k.deli_hits()), (0, 0, 0));
        assert_eq!(k.epochs(), epochs, "selection state survives reset");
    }

    #[test]
    fn capacity_and_occupancy_bounds() {
        let mut k = Kernel::init(cfg(4, 4, 2)).expect("valid config");
        k.force_chosen(&[class(1)]);
        let rounds = if cfg!(miri) { 500 } else { 10_000 };
        for n in 0..rounds {
            access(&mut k, 1, n % 97);
        }
        assert!(k.len() <= k.capacity());
        assert!(k.deli_occupancy() <= k.deli_capacity());
    }

    #[test]
    #[should_panic(expected = "audit: DeliWays hits")]
    fn audit_catches_corrupted_counter() {
        let mut k = Kernel::init(cfg(16, 4, 2)).expect("valid config");
        k.enable_audit();
        access(&mut k, 1, 5);
        k.deli_hits = 10_000; // corrupt: more deli hits than total hits
        access(&mut k, 1, 5);
    }
}
