//! Delinquency accounting: which insertion classes cause the misses.
//!
//! The DelinquentPC observation underpinning NUcache is that a handful of
//! sources produce most misses. This tracker maintains per-class miss
//! counters over a window, with exponential decay at epoch boundaries
//! and a hard cap on tracked classes so the structure stays bounded:
//! when full, the weakest entry is reclaimed for a newly hot class (a
//! standard victim-replacement counter table).

use alloc::collections::BTreeMap;
use alloc::vec::Vec;
use core::fmt::Debug;

/// Per-class miss counters with bounded capacity and epoch decay,
/// generic over the insertion-class type `C`.
///
/// # Examples
///
/// ```
/// use nucache_kernel::tracker::DelinquentTracker;
/// use nucache_kernel::InsertionClass;
///
/// let mut t = DelinquentTracker::new(8);
/// t.record_miss(InsertionClass::new(0x400));
/// t.record_miss(InsertionClass::new(0x400));
/// t.record_miss(InsertionClass::new(0x408));
/// let top = t.top_k(1);
/// assert_eq!(top[0].0, InsertionClass::new(0x400));
/// assert_eq!(top[0].1, 2);
/// ```
#[derive(Debug, Clone)]
pub struct DelinquentTracker<C> {
    capacity: usize,
    /// Keyed by class in a `BTreeMap` so every iteration (victim scan,
    /// top-k) visits entries in class order — tie-breaks are
    /// deterministic by construction, never a function of hasher state.
    misses: BTreeMap<C, u64>,
    total_misses: u64,
}

impl<C: Copy + Ord + Debug> DelinquentTracker<C> {
    /// Creates a tracker holding at most `capacity` classes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero capacity");
        DelinquentTracker { capacity, misses: BTreeMap::new(), total_misses: 0 }
    }

    /// Records one miss caused by `class`.
    pub fn record_miss(&mut self, class: C) {
        self.total_misses += 1;
        if let Some(c) = self.misses.get_mut(&class) {
            *c += 1;
            return;
        }
        if self.misses.len() >= self.capacity {
            // Reclaim the weakest entry; BTreeMap iteration is in class
            // order and min_by_key keeps the first minimum, so equal
            // counts resolve to the lowest class.
            let victim = self
                .misses
                .iter()
                .min_by_key(|&(_, c)| *c)
                .map(|(p, _)| *p)
                .expect("non-empty map at capacity");
            self.misses.remove(&victim);
        }
        // audit:allow-alloc(capacity-capped per-class miss table)
        self.misses.insert(class, 1);
    }

    /// Misses recorded for `class` in the current window.
    pub fn misses_of(&self, class: C) -> u64 {
        self.misses.get(&class).copied().unwrap_or(0)
    }

    /// Total misses observed (including those from untracked classes).
    pub const fn total_misses(&self) -> u64 {
        self.total_misses
    }

    /// Number of classes currently tracked.
    pub fn len(&self) -> usize {
        self.misses.len()
    }

    /// Whether no class has missed yet.
    pub fn is_empty(&self) -> bool {
        self.misses.is_empty()
    }

    /// The `k` classes with the most misses, descending (ties broken by
    /// class for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(C, u64)> {
        let mut v: Vec<(C, u64)> = self.misses.iter().map(|(p, c)| (*p, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Fraction of tracked misses covered by the top `k` classes (the
    /// DelinquentPC concentration statistic of the paper's Fig. 1).
    pub fn top_k_coverage(&self, k: usize) -> f64 {
        let tracked: u64 = self.misses.values().sum();
        if tracked == 0 {
            return 0.0;
        }
        let top: u64 = self.top_k(k).iter().map(|&(_, c)| c).sum();
        top as f64 / tracked as f64
    }

    /// Halves every counter and drops emptied entries (epoch decay).
    pub fn decay(&mut self) {
        self.misses.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
        self.total_misses /= 2;
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        self.misses.clear();
        self.total_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InsertionClass;
    use alloc::vec;

    fn class(raw: u64) -> InsertionClass {
        InsertionClass::new(raw)
    }

    #[test]
    fn counts_and_orders() {
        let mut t = DelinquentTracker::new(16);
        for _ in 0..5 {
            t.record_miss(class(1));
        }
        for _ in 0..3 {
            t.record_miss(class(2));
        }
        t.record_miss(class(3));
        let top = t.top_k(2);
        assert_eq!(top, vec![(class(1), 5), (class(2), 3)]);
        assert_eq!(t.total_misses(), 9);
        assert_eq!(t.misses_of(class(3)), 1);
        assert_eq!(t.misses_of(class(99)), 0);
    }

    #[test]
    fn capacity_evicts_weakest() {
        let mut t = DelinquentTracker::new(2);
        for _ in 0..10 {
            t.record_miss(class(1));
        }
        t.record_miss(class(2));
        t.record_miss(class(3)); // evicts class 2 (weakest)
        assert_eq!(t.len(), 2);
        assert_eq!(t.misses_of(class(2)), 0);
        assert_eq!(t.misses_of(class(1)), 10);
        assert_eq!(t.misses_of(class(3)), 1);
    }

    #[test]
    fn coverage_concentrates() {
        let mut t = DelinquentTracker::new(64);
        for _ in 0..90 {
            t.record_miss(class(7));
        }
        for p in 0..10 {
            t.record_miss(class(100 + p));
        }
        assert!(t.top_k_coverage(1) > 0.89);
        assert!((t.top_k_coverage(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decay_halves_and_prunes() {
        let mut t = DelinquentTracker::new(8);
        t.record_miss(class(1));
        for _ in 0..4 {
            t.record_miss(class(2));
        }
        t.decay();
        assert_eq!(t.misses_of(class(1)), 0, "count 1 decays to 0 and is pruned");
        assert_eq!(t.misses_of(class(2)), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_edge_cases() {
        let t: DelinquentTracker<InsertionClass> = DelinquentTracker::new(4);
        assert!(t.is_empty());
        assert_eq!(t.top_k(3), vec![]);
        assert_eq!(t.top_k_coverage(3), 0.0);
    }
}
