//! Substrate throughput: raw cost of one access through the tag array,
//! the LRU cache, and the private hierarchy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nucache_bench::{drive_policy_cache, fill_find_churn, mixed_pattern};
use nucache_cache::hierarchy::PrivateHierarchy;
use nucache_cache::meta::LineMeta;
use nucache_cache::policy::Lru;
use nucache_cache::{BasicCache, CacheGeometry, SetArray};
use nucache_common::{CoreId, Pc};
use std::hint::black_box;

fn bench_set_array(c: &mut Criterion) {
    let geom = CacheGeometry::new(1024 * 1024, 16, 64);
    let mut group = c.benchmark_group("set_array");
    group.throughput(Throughput::Elements(1));
    group.bench_function("find_hit", |b| {
        let mut arr = SetArray::new(geom);
        arr.fill(5, 7, LineMeta::new(42, CoreId::new(0), Pc::new(0), false));
        b.iter(|| black_box(arr.find(black_box(5), black_box(42))));
    });
    group.bench_function("find_miss", |b| {
        let arr = SetArray::new(geom);
        b.iter(|| black_box(arr.find(black_box(5), black_box(42))));
    });
    // Steady-state churn: interleaved fills, probes and invalidations
    // across many sets — the access pattern the simulator actually
    // produces, rather than a single hot set. The loop itself lives in
    // `nucache_bench::fill_find_churn` so the `summary` perf-trajectory
    // binary measures the identical workload.
    const CHURN: u64 = 100_000;
    group.throughput(Throughput::Elements(CHURN));
    group.bench_function("fill_find_churn_100k", |b| {
        b.iter_batched_ref(
            || SetArray::new(geom),
            |arr| black_box(fill_find_churn(arr, CHURN)),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_lru_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("basic_cache");
    for assoc in [8usize, 16] {
        let geom = CacheGeometry::new(1024 * 1024, assoc, 64);
        let pattern = mixed_pattern(100_000, 8_000, 1);
        group.throughput(Throughput::Elements(pattern.len() as u64));
        group.bench_function(format!("lru_{assoc}way_100k"), |b| {
            b.iter_batched_ref(
                || BasicCache::new(geom, Lru::new(&geom)),
                |cache| black_box(drive_policy_cache(cache, &pattern)),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_private_hierarchy(c: &mut Criterion) {
    let l1 = CacheGeometry::new(32 * 1024, 8, 64);
    let l2 = CacheGeometry::new(256 * 1024, 8, 64);
    let pattern = mixed_pattern(100_000, 400, 2); // mostly L1/L2 hits
    let mut group = c.benchmark_group("private_hierarchy");
    group.throughput(Throughput::Elements(pattern.len() as u64));
    group.bench_function("l1_l2_100k", |b| {
        b.iter_batched_ref(
            || PrivateHierarchy::new(CoreId::new(0), l1, l2),
            |h| {
                let mut llc_accesses = 0u64;
                for &(line, pc) in &pattern {
                    if h.access(pc, line, nucache_common::AccessKind::Read).reaches_llc() {
                        llc_accesses += 1;
                    }
                }
                black_box(llc_accesses)
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_set_array, bench_lru_cache, bench_private_hierarchy);
criterion_main!(benches);
