//! Replacement-policy overhead: per-access cost of every policy on the
//! same pattern, so the price of smarter replacement is visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nucache_bench::{drive_policy_cache, mixed_pattern};
use nucache_cache::policy::{
    Bip, Dip, Drrip, Fifo, Lip, Lru, Nru, RandomEvict, Srrip, TadipF, TreePlru,
};
use nucache_cache::{BasicCache, CacheGeometry, ReplacementPolicy};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let geom = CacheGeometry::new(512 * 1024, 16, 64);
    let pattern = mixed_pattern(50_000, 4_000, 3);
    let mut group = c.benchmark_group("policy_50k");
    group.throughput(Throughput::Elements(pattern.len() as u64));

    fn case<P: ReplacementPolicy>(
        group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
        pattern: &[nucache_bench::CannedAccess],
        geom: CacheGeometry,
        name: &str,
        make: impl Fn() -> P,
    ) {
        group.bench_function(name, |b| {
            b.iter_batched_ref(
                || BasicCache::new(geom, make()),
                |cache| black_box(drive_policy_cache(cache, pattern)),
                BatchSize::LargeInput,
            );
        });
    }

    case(&mut group, &pattern, geom, "lru", || Lru::new(&geom));
    case(&mut group, &pattern, geom, "fifo", || Fifo::new(&geom));
    case(&mut group, &pattern, geom, "random", || RandomEvict::new(&geom, 1));
    case(&mut group, &pattern, geom, "nru", || Nru::new(&geom));
    case(&mut group, &pattern, geom, "plru", || TreePlru::new(&geom));
    case(&mut group, &pattern, geom, "lip", || Lip::new(&geom));
    case(&mut group, &pattern, geom, "bip", || Bip::new(&geom, 1));
    case(&mut group, &pattern, geom, "dip", || Dip::new(&geom, 1));
    case(&mut group, &pattern, geom, "srrip", || Srrip::new(&geom));
    case(&mut group, &pattern, geom, "drrip", || Drrip::new(&geom, 1));
    case(&mut group, &pattern, geom, "tadip", || TadipF::new(&geom, 2, 1));
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
