//! NUcache component costs and design-choice ablations:
//!
//! * access cost vs the LRU baseline (the per-access tax of the
//!   organization);
//! * Next-Use monitor sampling ratio (DESIGN.md ablation);
//! * PC-selection pass cost: greedy vs exhaustive;
//! * DeliWays-hit promotion on/off.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nucache_bench::{drive_shared_llc, mixed_pattern};
use nucache_cache::policy::Lru;
use nucache_cache::{CacheGeometry, ClassicLlc};
use nucache_common::{Log2Histogram, Pc};
use nucache_core::selector::{select_pcs, Candidate};
use nucache_core::{NuCache, NuCacheConfig, SelectionStrategy};
use std::hint::black_box;

fn bench_access_cost(c: &mut Criterion) {
    let geom = CacheGeometry::new(512 * 1024, 16, 64);
    let pattern = mixed_pattern(50_000, 4_000, 5);
    let mut group = c.benchmark_group("llc_access_50k");
    group.throughput(Throughput::Elements(pattern.len() as u64));
    group.bench_function("classic_lru", |b| {
        b.iter_batched_ref(
            || ClassicLlc::new(geom, Lru::new(&geom), 1),
            |llc| black_box(drive_shared_llc(llc, &pattern)),
            BatchSize::LargeInput,
        );
    });
    group.bench_function("nucache_d8", |b| {
        b.iter_batched_ref(
            || NuCache::new(geom, 1, NuCacheConfig::default()),
            |llc| black_box(drive_shared_llc(llc, &pattern)),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_monitor_sampling(c: &mut Criterion) {
    let geom = CacheGeometry::new(512 * 1024, 16, 64);
    let pattern = mixed_pattern(50_000, 4_000, 6);
    let mut group = c.benchmark_group("monitor_sampling_50k");
    group.throughput(Throughput::Elements(pattern.len() as u64));
    for shift in [0u32, 3, 5, 7] {
        group.bench_function(format!("shift_{shift}"), |b| {
            b.iter_batched_ref(
                || {
                    let cfg = NuCacheConfig { monitor_shift: shift, ..NuCacheConfig::default() };
                    NuCache::new(geom, 1, cfg)
                },
                |llc| black_box(drive_shared_llc(llc, &pattern)),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_selection_pass(c: &mut Criterion) {
    // Realistic candidate pool: 32 PCs with populated histograms.
    let candidates: Vec<Candidate> = (0..32)
        .map(|i| {
            let mut h = Log2Histogram::new(32);
            h.record_n(10 + i * 17, 500);
            h.record_n(1000 + i * 31, 200);
            Candidate { class: Pc::new(i), fills: 1_000 + i * 100, histogram: Some(h) }
        })
        .collect();
    let small: Vec<Candidate> = candidates.iter().take(12).cloned().collect();
    let mut group = c.benchmark_group("selection_pass");
    group.bench_function("greedy_32", |b| {
        b.iter(|| {
            black_box(select_pcs(
                black_box(&candidates),
                8,
                1_000_000,
                SelectionStrategy::CostBenefit,
                1,
            ))
        });
    });
    group.bench_function("exhaustive_12", |b| {
        b.iter(|| {
            black_box(select_pcs(black_box(&small), 8, 1_000_000, SelectionStrategy::Exhaustive, 1))
        });
    });
    group.finish();
}

fn bench_promotion_ablation(c: &mut Criterion) {
    let geom = CacheGeometry::new(512 * 1024, 16, 64);
    let pattern = mixed_pattern(50_000, 10_000, 7); // loop exceeding MainWays
    let mut group = c.benchmark_group("deli_promotion_50k");
    group.throughput(Throughput::Elements(pattern.len() as u64));
    let variants =
        [("promote", true, false), ("fifo", false, false), ("second_chance", false, true)];
    for (name, promote, refresh) in variants {
        group.bench_function(name, |b| {
            b.iter_batched_ref(
                || {
                    let mut cfg = NuCacheConfig::default().with_epoch_len(10_000);
                    cfg.promote_on_deli_hit = promote;
                    cfg.deli_hit_refresh = refresh;
                    NuCache::new(geom, 1, cfg)
                },
                |llc| black_box(drive_shared_llc(llc, &pattern)),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_access_cost,
    bench_monitor_sampling,
    bench_selection_pass,
    bench_promotion_ablation
);
criterion_main!(benches);
