//! End-to-end simulator throughput: the cost of one full dual-core mix
//! under each headline scheme. These numbers gate how large the
//! evaluation's run lengths can be.

use criterion::{criterion_group, criterion_main, Criterion};
use nucache_sim::{run_mix, Scheme, SimConfig};
use nucache_trace::{Mix, SpecWorkload};
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    let config = SimConfig::baseline(2).with_run_lengths(10_000, 40_000);
    let mix = Mix::new("bench", vec![SpecWorkload::SphinxLike, SpecWorkload::LibquantumLike]);
    let mut group = c.benchmark_group("dual_core_50k_accesses");
    group.sample_size(10);
    for scheme in Scheme::headline_suite() {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| black_box(run_mix(&config, &mix, &scheme)));
        });
    }
    group.finish();
}

fn bench_core_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("nucache_core_scaling");
    group.sample_size(10);
    for cores in [1usize, 2, 4] {
        let config = SimConfig::baseline(cores).with_run_lengths(5_000, 20_000);
        let workloads: Vec<SpecWorkload> =
            SpecWorkload::ALL.iter().copied().cycle().take(cores).collect();
        let mix = Mix::new(format!("scale{cores}"), workloads);
        group.bench_function(format!("{cores}core_25k"), |b| {
            b.iter(|| black_box(run_mix(&config, &mix, &Scheme::nucache_default())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_core_scaling);
criterion_main!(benches);
