//! `nucache-bench summary`: one machine-readable point on the perf
//! trajectory.
//!
//! Runs the two canonical throughput workloads and writes a JSON summary
//! (the `BENCH_<n>.json` schema, DESIGN.md §12):
//!
//! * **`fill_find_churn`** — the steady-state tag-array churn loop from
//!   `benches/substrate.rs`, via [`nucache_bench::fill_find_churn`], so
//!   substrate-level changes show up directly;
//! * **`quick_run_all`** — a fixed dual-core evaluation slice (headline
//!   suite × two mixes, serial, fixed run lengths independent of
//!   `NUCACHE_QUICK`), so end-to-end driver/trace changes show up in
//!   wall-clock.
//!
//! Usage:
//!
//! ```text
//! summary [--out PATH] [--label NAME] [--baseline PATH] \
//!         [--threaded PATH] [--check PATH [--max-regress FRAC]]
//! ```
//!
//! `--baseline` embeds a previous summary's measurements under
//! `"baseline"` (the before/after record each PR commits). `--threaded`
//! embeds a `loadgen` run's JSON (the threaded closed-loop sweep) under
//! `"threaded"`. `--check` compares this run against a committed
//! summary and exits non-zero if either workload's accesses/sec fell by
//! more than `--max-regress` (default 0.30) — the CI regression gate
//! (the `threaded` section is informational: wall-clock-sleep-bound
//! numbers regress with host scheduling, not with code).

use nucache_bench::fill_find_churn;
use nucache_cache::{CacheGeometry, SetArray};
use nucache_common::json::{parse, JsonValue};
use nucache_sim::telemetry::git_revision;
use nucache_sim::{run_mix, take_simulated_accesses, Scheme, SimConfig};
use nucache_trace::{Mix, SpecWorkload};
use std::process::ExitCode;
use std::time::Instant;

/// Churn iterations per timed repetition.
const CHURN_ITERS: u64 = 4_000_000;
/// Timed churn repetitions (best rate wins, to shed scheduler noise).
const CHURN_REPS: usize = 3;
/// Timed repetitions of the quick `run_all` slice (best wall-clock wins —
/// same noise-shedding rationale as [`CHURN_REPS`]).
const QUICK_REPS: usize = 3;
/// Fixed warm-up/measure lengths for the quick `run_all` slice. These
/// are deliberately independent of `NUCACHE_QUICK`: trajectory points
/// must measure the same workload on every host and every PR.
const QUICK_WARMUP: u64 = 25_000;
const QUICK_MEASURE: u64 = 100_000;

/// One measured workload: volume, wall-clock and rate.
struct Measurement {
    accesses: u64,
    seconds: f64,
    rate: f64,
}

impl Measurement {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("accesses", JsonValue::Num(self.accesses as f64)),
            ("seconds", JsonValue::Num(self.seconds)),
            ("accesses_per_sec", JsonValue::Num(self.rate)),
        ])
    }
}

fn measure_churn() -> Measurement {
    let geom = CacheGeometry::new(1024 * 1024, 16, 64);
    // Warm-up pass: page in the arrays and settle the clocks.
    let mut warm = SetArray::new(geom);
    std::hint::black_box(fill_find_churn(&mut warm, 200_000));
    let mut best = f64::MAX;
    for _ in 0..CHURN_REPS {
        let mut arr = SetArray::new(geom);
        let t = Instant::now();
        std::hint::black_box(fill_find_churn(&mut arr, CHURN_ITERS));
        best = best.min(t.elapsed().as_secs_f64());
    }
    Measurement { accesses: CHURN_ITERS, seconds: best, rate: CHURN_ITERS as f64 / best.max(1e-9) }
}

/// The fixed quick evaluation slice: headline suite × two dual-core
/// mixes, run serially so the number is a single-thread driver figure.
/// Repeated [`QUICK_REPS`] times; the best wall-clock wins.
fn measure_quick_run_all() -> Measurement {
    let config = SimConfig::baseline(2).with_run_lengths(QUICK_WARMUP, QUICK_MEASURE);
    let mixes = [
        Mix::new("sphinx_libq", vec![SpecWorkload::SphinxLike, SpecWorkload::LibquantumLike]),
        Mix::new("hmmer_bzip2", vec![SpecWorkload::HmmerLike, SpecWorkload::Bzip2Like]),
    ];
    let mut best = f64::MAX;
    let mut accesses = 0;
    for _ in 0..QUICK_REPS {
        take_simulated_accesses(); // discard anything counted before this rep
        let t = Instant::now();
        for scheme in Scheme::headline_suite() {
            for mix in &mixes {
                std::hint::black_box(run_mix(&config, mix, &scheme));
            }
        }
        best = best.min(t.elapsed().as_secs_f64());
        accesses = take_simulated_accesses();
    }
    Measurement { accesses, seconds: best, rate: accesses as f64 / best.max(1e-9) }
}

fn host_json() -> JsonValue {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    JsonValue::obj(vec![
        ("os", JsonValue::Str(std::env::consts::OS.to_string())),
        ("arch", JsonValue::Str(std::env::consts::ARCH.to_string())),
        ("cpus", JsonValue::Num(cpus as f64)),
    ])
}

/// Extracts `section.accesses_per_sec` from a parsed summary.
fn rate_of(doc: &JsonValue, section: &str) -> Option<f64> {
    doc.get(section)?.get("accesses_per_sec")?.as_f64()
}

fn run() -> Result<(), String> {
    let mut out_path = None;
    let mut label = "summary".to_string();
    let mut baseline_path = None;
    let mut threaded_path = None;
    let mut check_path = None;
    let mut max_regress = 0.30f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--out" => out_path = Some(value("--out")?),
            "--label" => label = value("--label")?,
            "--baseline" => baseline_path = Some(value("--baseline")?),
            "--threaded" => threaded_path = Some(value("--threaded")?),
            "--check" => check_path = Some(value("--check")?),
            "--max-regress" => {
                max_regress =
                    value("--max-regress")?.parse().map_err(|e| format!("--max-regress: {e}"))?
            }
            "--help" => {
                println!(
                    "summary [--out PATH] [--label NAME] [--baseline PATH] \
                     [--threaded PATH] [--check PATH [--max-regress FRAC]]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }

    eprintln!("[summary] fill_find_churn: {CHURN_ITERS} iterations x {CHURN_REPS}");
    let churn = measure_churn();
    eprintln!(
        "[summary] fill_find_churn: {:.0} accesses/sec ({:.3}s best of {CHURN_REPS})",
        churn.rate, churn.seconds
    );
    eprintln!("[summary] quick_run_all: headline suite x 2 mixes, serial, x {QUICK_REPS}");
    let run_all = measure_quick_run_all();
    eprintln!(
        "[summary] quick_run_all: {:.2}s wall-clock (best of {QUICK_REPS}), {:.0} accesses/sec",
        run_all.seconds, run_all.rate
    );

    let mut fields = vec![
        ("schema", JsonValue::Str("nucache-bench-summary/v1".to_string())),
        ("label", JsonValue::Str(label)),
        ("git_rev", git_revision().map_or(JsonValue::Null, JsonValue::Str)),
        ("host", host_json()),
        ("fill_find_churn", churn.to_json()),
        ("quick_run_all", run_all.to_json()),
    ];
    if let Some(path) = &threaded_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let doc = parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        fields.push(("threaded", doc));
    }
    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let doc = parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let section = |name: &str| doc.get(name).cloned().unwrap_or(JsonValue::Null);
        fields.push((
            "baseline",
            JsonValue::obj(vec![
                ("git_rev", section("git_rev")),
                ("fill_find_churn", section("fill_find_churn")),
                ("quick_run_all", section("quick_run_all")),
            ]),
        ));
    }
    let json = JsonValue::obj(fields).to_string_pretty();
    match &out_path {
        Some(path) => {
            std::fs::write(path, format!("{json}\n"))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("[summary] wrote {path}");
        }
        None => println!("{json}"),
    }

    if let Some(path) = &check_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let doc = parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let mut failures = Vec::new();
        for (name, measured) in [("fill_find_churn", churn.rate), ("quick_run_all", run_all.rate)] {
            let reference =
                rate_of(&doc, name).ok_or(format!("{path} has no {name}.accesses_per_sec"))?;
            let floor = reference * (1.0 - max_regress);
            if measured < floor {
                failures.push(format!(
                    "{name}: {measured:.0}/s is below the floor {floor:.0}/s \
                     ({reference:.0}/s committed, -{:.0}% allowed)",
                    max_regress * 100.0
                ));
            } else {
                eprintln!(
                    "[summary] check {name}: {measured:.0}/s vs committed {reference:.0}/s — ok"
                );
            }
        }
        if !failures.is_empty() {
            return Err(format!("throughput regression vs {path}: {}", failures.join("; ")));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[summary] error: {e}");
            ExitCode::FAILURE
        }
    }
}
