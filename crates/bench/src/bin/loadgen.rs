//! `nucache-bench loadgen`: the threaded closed-loop load generator.
//!
//! Drives the concurrent sharded NUcache front-end and/or the
//! lock-striped LRU baseline at a sweep of thread counts, reporting
//! ops/sec and latency quantiles per point, and writes the
//! `BENCH_<n>.json` `threaded` section (see [`nucache_bench::loadgen`]
//! for the methodology — on a single-CPU host, scaling comes from
//! overlapping the simulated backend latency on misses).
//!
//! Usage:
//!
//! ```text
//! loadgen [--threads LIST] [--duration-ms N] [--shards N]
//!         [--backend-us N] [--workload NAME] [--cache nucache|lru|both]
//!         [--inject-faults SEED] [--out PATH]
//! ```
//!
//! `--out` writes a JSON object (`{"threaded": {...}}`-shaped payload
//! without the wrapper — the `summary` binary embeds it with
//! `--threaded PATH`); otherwise it prints to stdout.

use nucache_bench::loadgen::{run_nucache, run_striped_lru, LoadgenConfig, LoadgenReport};
use nucache_common::fault::FaultPlan;
use nucache_common::json::JsonValue;
use nucache_trace::SpecWorkload;
use std::process::ExitCode;
use std::time::Duration;

/// Which caches to sweep.
#[derive(Clone, Copy, PartialEq)]
enum CacheChoice {
    Nucache,
    Lru,
    Both,
}

fn run() -> Result<(), String> {
    let mut threads: Vec<usize> = vec![1, 4, 16, 64];
    let mut duration_ms: u64 = 500;
    let mut shards: usize = 16;
    let mut backend_us: u64 = 100;
    let mut workload = SpecWorkload::SphinxLike;
    let mut cache = CacheChoice::Both;
    let mut fault_plan = None;
    let mut out_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--threads" => {
                threads = value("--threads")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?;
                if threads.is_empty() {
                    return Err("--threads needs at least one count".to_string());
                }
            }
            "--duration-ms" => {
                duration_ms =
                    value("--duration-ms")?.parse().map_err(|e| format!("--duration-ms: {e}"))?
            }
            "--shards" => {
                shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--backend-us" => {
                backend_us =
                    value("--backend-us")?.parse().map_err(|e| format!("--backend-us: {e}"))?
            }
            "--workload" => {
                let name = value("--workload")?;
                workload = SpecWorkload::from_name(&name)
                    .ok_or(format!("--workload: unknown workload '{name}'"))?;
            }
            "--cache" => {
                cache = match value("--cache")?.as_str() {
                    "nucache" => CacheChoice::Nucache,
                    "lru" => CacheChoice::Lru,
                    "both" => CacheChoice::Both,
                    other => return Err(format!("--cache: '{other}' (nucache|lru|both)")),
                }
            }
            "--inject-faults" => {
                let seed = value("--inject-faults")?
                    .parse()
                    .map_err(|e| format!("--inject-faults: {e}"))?;
                fault_plan = Some(FaultPlan::new(seed));
            }
            "--out" => out_path = Some(value("--out")?),
            "--help" => {
                println!(
                    "loadgen [--threads LIST] [--duration-ms N] [--shards N] [--backend-us N] \
                     [--workload NAME] [--cache nucache|lru|both] [--inject-faults SEED] \
                     [--out PATH]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }

    let runs_for = |label: &str, f: &dyn Fn(&LoadgenConfig) -> LoadgenReport| {
        let mut runs = Vec::new();
        for &t in &threads {
            let mut cfg = LoadgenConfig::new(t, Duration::from_millis(duration_ms));
            cfg.shards = shards;
            cfg.backend = Duration::from_micros(backend_us);
            cfg.workload = workload;
            cfg.fault_plan = fault_plan;
            let report = f(&cfg);
            eprintln!(
                "[loadgen] {label} x{t}: {:.0} ops/sec, p99 {:?} ns, {} panics, {} recoveries",
                report.ops_per_sec, report.p99_ns, report.batch_panics, report.poison_recoveries
            );
            runs.push(report.to_json());
        }
        JsonValue::Arr(runs)
    };

    let mut fields = vec![
        ("shards", JsonValue::Num(shards as f64)),
        ("duration_ms", JsonValue::Num(duration_ms as f64)),
        ("backend_us", JsonValue::Num(backend_us as f64)),
        ("workload", JsonValue::Str(workload.name().to_string())),
        (
            "injected_fault_seed",
            fault_plan.map_or(JsonValue::Null, |p| JsonValue::Num(p.seed() as f64)),
        ),
    ];
    if cache != CacheChoice::Lru {
        fields.push(("nucache", runs_for("nucache", &run_nucache)));
    }
    if cache != CacheChoice::Nucache {
        fields.push(("striped_lru", runs_for("striped_lru", &run_striped_lru)));
    }

    let json = JsonValue::obj(fields).to_string_pretty();
    match &out_path {
        Some(path) => {
            std::fs::write(path, format!("{json}\n"))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("[loadgen] wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[loadgen] error: {e}");
            ExitCode::FAILURE
        }
    }
}
