//! Benchmark support for the NUcache reproduction.
//!
//! The Criterion benches live under `benches/`; this library holds the
//! shared drivers so each bench file stays declarative:
//!
//! * [`drive_policy_cache`] — replay a canned access pattern against a
//!   policy cache and return its hit count;
//! * [`drive_shared_llc`] — the same against any [`SharedLlc`];
//! * [`mixed_pattern`] — the loop+scan pattern used across policy
//!   benches, pre-generated so benches measure the cache, not the RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nucache_cache::{BasicCache, ReplacementPolicy, SharedLlc};
use nucache_common::{AccessKind, CoreId, DetRng, LineAddr, Pc};

/// One pre-generated access: line plus attributed PC.
pub type CannedAccess = (LineAddr, Pc);

/// A loop-plus-scan pattern of `n` accesses over `loop_lines` reusable
/// lines, with one scan access every third step — the canonical
/// retention workload used throughout the benches.
pub fn mixed_pattern(n: usize, loop_lines: u64, seed: u64) -> Vec<CannedAccess> {
    let mut rng = DetRng::substream(seed, 0xbe9c);
    let mut out = Vec::with_capacity(n);
    let mut scan = 1u64 << 30;
    for i in 0..n {
        if i % 3 == 2 {
            out.push((LineAddr::new(scan), Pc::new(0x200)));
            scan += 1;
        } else {
            // Mostly sequential loop with occasional random jumps so the
            // pattern is not trivially prefetchable.
            let line =
                if rng.chance(0.05) { rng.below(loop_lines) } else { (i as u64) % loop_lines };
            out.push((LineAddr::new(line), Pc::new(0x100)));
        }
    }
    out
}

/// Replays `pattern` against a policy cache; returns hits (as a
/// black-boxable value).
pub fn drive_policy_cache<P: ReplacementPolicy>(
    cache: &mut BasicCache<P>,
    pattern: &[CannedAccess],
) -> u64 {
    let core = CoreId::new(0);
    let mut hits = 0;
    for &(line, pc) in pattern {
        if cache.access(line, AccessKind::Read, core, pc).is_hit() {
            hits += 1;
        }
    }
    hits
}

/// Replays `pattern` against a shared LLC; returns hits.
pub fn drive_shared_llc(llc: &mut dyn SharedLlc, pattern: &[CannedAccess]) -> u64 {
    let core = CoreId::new(0);
    let mut hits = 0;
    for &(line, pc) in pattern {
        if llc.access(core, pc, line, AccessKind::Read).is_hit() {
            hits += 1;
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_cache::policy::Lru;
    use nucache_cache::CacheGeometry;

    #[test]
    fn pattern_is_deterministic_and_sized() {
        let a = mixed_pattern(1000, 64, 1);
        let b = mixed_pattern(1000, 64, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn drivers_count_hits() {
        let geom = CacheGeometry::new(64 * 1024, 8, 64);
        let mut cache = BasicCache::new(geom, Lru::new(&geom));
        let pattern = mixed_pattern(10_000, 128, 2);
        let hits = drive_policy_cache(&mut cache, &pattern);
        assert!(hits > 0);
    }
}
