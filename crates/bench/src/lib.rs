//! Benchmark support for the NUcache reproduction.
//!
//! The Criterion benches live under `benches/`; this library holds the
//! shared drivers so each bench file stays declarative:
//!
//! * [`drive_policy_cache`] — replay a canned access pattern against a
//!   policy cache and return its hit count;
//! * [`drive_shared_llc`] — the same against any [`SharedLlc`];
//! * [`mixed_pattern`] — the loop+scan pattern used across policy
//!   benches, pre-generated so benches measure the cache, not the RNG;
//! * [`fill_find_churn`] — the steady-state tag-array churn loop shared
//!   by the Criterion bench and the `summary` perf-trajectory binary;
//! * [`loadgen`] — the closed-loop threaded load generator driving the
//!   concurrent sharded front-end against a lock-striped LRU baseline
//!   (the `loadgen` binary and the `threaded` section of
//!   `BENCH_<n>.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;

use nucache_cache::meta::LineMeta;
use nucache_cache::{BasicCache, ReplacementPolicy, SetArray, SharedLlc};
use nucache_common::{AccessKind, CoreId, DetRng, LineAddr, Pc};

/// One pre-generated access: line plus attributed PC.
pub type CannedAccess = (LineAddr, Pc);

/// A loop-plus-scan pattern of `n` accesses over `loop_lines` reusable
/// lines, with one scan access every third step — the canonical
/// retention workload used throughout the benches.
pub fn mixed_pattern(n: usize, loop_lines: u64, seed: u64) -> Vec<CannedAccess> {
    let mut rng = DetRng::substream(seed, 0xbe9c);
    let mut out = Vec::with_capacity(n);
    let mut scan = 1u64 << 30;
    for i in 0..n {
        if i % 3 == 2 {
            out.push((LineAddr::new(scan), Pc::new(0x200)));
            scan += 1;
        } else {
            // Mostly sequential loop with occasional random jumps so the
            // pattern is not trivially prefetchable.
            let line =
                if rng.chance(0.05) { rng.below(loop_lines) } else { (i as u64) % loop_lines };
            out.push((LineAddr::new(line), Pc::new(0x100)));
        }
    }
    out
}

/// Replays `pattern` against a policy cache; returns hits (as a
/// black-boxable value).
pub fn drive_policy_cache<P: ReplacementPolicy>(
    cache: &mut BasicCache<P>,
    pattern: &[CannedAccess],
) -> u64 {
    let core = CoreId::new(0);
    let mut hits = 0;
    for &(line, pc) in pattern {
        if cache.access(line, AccessKind::Read, core, pc).is_hit() {
            hits += 1;
        }
    }
    hits
}

/// Steady-state tag-array churn: `n` rounds of interleaved fills, probes
/// and invalidations across many sets — the access pattern the simulator
/// actually produces, rather than a single hot set. Returns the hit
/// count so callers can black-box it.
///
/// This is the canonical `fill_find_churn` workload: the Criterion bench
/// (`benches/substrate.rs`) and the `summary` binary both run exactly
/// this loop, so their numbers are comparable across PRs.
pub fn fill_find_churn(arr: &mut SetArray, n: u64) -> u64 {
    let sets = arr.geometry().num_sets();
    let ways = arr.geometry().associativity();
    // Geometries guarantee power-of-two set counts; the bench geometries
    // use power-of-two associativity too, so the index math reduces to
    // masks (same values as `% sets` / `% ways`, no division in the
    // harness — the loop measures the array, not the modulo unit).
    assert!(
        sets.is_power_of_two() && ways.is_power_of_two(),
        "fill_find_churn expects power-of-two geometry"
    );
    let (set_mask, way_mask) = (sets - 1, ways - 1);
    let mut hits = 0u64;
    for i in 0..n {
        let set = (i as usize).wrapping_mul(7) & set_mask;
        let way = (i as usize).wrapping_mul(5) & way_mask;
        let tag = i % 32;
        arr.fill(set, way, LineMeta::new(tag, CoreId::new(0), Pc::new(0), i & 3 == 0));
        hits += u64::from(arr.find(set, tag).is_some());
        if i % 9 == 0 {
            arr.invalidate(set, way);
        }
    }
    hits
}

/// Replays `pattern` against a shared LLC; returns hits.
pub fn drive_shared_llc(llc: &mut dyn SharedLlc, pattern: &[CannedAccess]) -> u64 {
    let core = CoreId::new(0);
    let mut hits = 0;
    for &(line, pc) in pattern {
        if llc.access(core, pc, line, AccessKind::Read).is_hit() {
            hits += 1;
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_cache::policy::Lru;
    use nucache_cache::CacheGeometry;

    #[test]
    fn pattern_is_deterministic_and_sized() {
        let a = mixed_pattern(1000, 64, 1);
        let b = mixed_pattern(1000, 64, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn drivers_count_hits() {
        let geom = CacheGeometry::new(64 * 1024, 8, 64);
        let mut cache = BasicCache::new(geom, Lru::new(&geom));
        let pattern = mixed_pattern(10_000, 128, 2);
        let hits = drive_policy_cache(&mut cache, &pattern);
        assert!(hits > 0);
    }
}
