//! Closed-loop threaded load generator for the concurrent NUcache
//! front-end.
//!
//! Each worker thread replays a [`TraceGen`] access stream (the same
//! behavior models the simulator uses) against a shared cache as a
//! *closed loop*: a miss "fetches from the origin" by sleeping a fixed
//! backend latency — outside every shard lock — then inserting, so the
//! next request does not issue until the current one completes. On a
//! single-CPU host, thread scaling therefore comes from overlapping the
//! simulated backend latency, not from CPU parallelism; the in-cache
//! critical sections are the contended resource under test.
//!
//! Two servable caches are provided:
//!
//! * [`ConcurrentNucache`] — the sharded NUcache front-end with its
//!   background epoch thread ([`run_nucache`]);
//! * [`ShardedLru`] — a deliberately lean lock-striped, set-associative
//!   LRU with the same shard count and per-shard geometry
//!   ([`run_striped_lru`]), so the comparison isolates the NUcache
//!   mechanism cost (monitor, tracker, DeliWays) rather than
//!   implementation polish.
//!
//! Per-request latency lands in a [`Log2Histogram`] (nanoseconds), so
//! reports carry p50/p99. Batches of requests run under
//! [`catch_unwind`] with optional seeded fault injection
//! ([`FaultSite::ServeBatch`]): a faulted batch panics mid-request —
//! inside the shard lock when the request hits — poisoning the shard
//! and exercising the front-end's `PoisonError::into_inner` recovery
//! while the generator abandons only that batch.

use nucache_common::fault::{FaultPlan, FaultSite};
use nucache_common::histogram::Log2Histogram;
use nucache_common::json::JsonValue;
use nucache_common::{mix64, CoreId, FastRange};
use nucache_kernel::concurrent::{ConcurrentConfig, ConcurrentNucache, EpochThread};
use nucache_kernel::{InsertionClass, KernelConfig};
use nucache_trace::{SpecWorkload, TraceGen, BLOCK_BITS};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Requests per batch: the unit of panic isolation (and fault
/// injection).
pub const BATCH_OPS: usize = 64;

/// Latency histogram buckets: `2^40` ns ≈ 18 minutes, far beyond any
/// single request.
const LATENCY_BUCKETS: usize = 40;

/// Load-generator parameters shared by every cache under test.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Worker (request) threads.
    pub threads: usize,
    /// Shards for both caches.
    pub shards: usize,
    /// Per-shard geometry (both caches use `sets × ways`; NUcache
    /// additionally splits off `deli_ways`).
    pub shard: KernelConfig,
    /// Wall-clock measurement window.
    pub duration: Duration,
    /// Simulated origin-fetch latency charged on every miss, slept
    /// outside all locks.
    pub backend: Duration,
    /// Behavior model each worker replays (workers get distinct cores
    /// and seeds, so streams differ but are reproducible).
    pub workload: SpecWorkload,
    /// Base seed for the per-worker trace streams.
    pub seed: u64,
    /// Seeded per-batch fault injection ([`FaultSite::ServeBatch`]).
    pub fault_plan: Option<FaultPlan>,
}

impl LoadgenConfig {
    /// The defaults the CLI and CI smoke start from: 16 shards of
    /// 256×8 (4 DeliWays), 100µs backend, a reuse-heavy workload.
    pub fn new(threads: usize, duration: Duration) -> Self {
        LoadgenConfig {
            threads,
            shards: 16,
            // Short epochs relative to the request volume a
            // backend-bound closed loop reaches, so runs actually
            // exercise the deferred selection path.
            shard: KernelConfig::default()
                .with_sets(256)
                .with_ways(8)
                .with_deli_ways(4)
                .with_epoch_len(1024),
            duration,
            backend: Duration::from_micros(100),
            workload: SpecWorkload::SphinxLike,
            seed: 0x10ad_6e4e,
            fault_plan: None,
        }
    }
}

/// What one load-generator run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Cache label (`"nucache"` / `"striped_lru"`).
    pub cache: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Completed requests (panicked batches count only the requests
    /// that finished before the panic).
    pub ops: u64,
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that paid the backend latency.
    pub misses: u64,
    /// Measured wall-clock seconds.
    pub seconds: f64,
    /// Completed requests per second, across all threads.
    pub ops_per_sec: f64,
    /// Median request latency (ns, saturating histogram bound).
    pub p50_ns: Option<u64>,
    /// 99th-percentile request latency (ns).
    pub p99_ns: Option<u64>,
    /// Request batches started.
    pub batches: u64,
    /// Batches abandoned to a panic (injected faults).
    pub batch_panics: u64,
    /// Poisoned-lock recoveries the cache performed.
    pub poison_recoveries: u64,
    /// Deferred selection epochs the background thread installed
    /// (always 0 for the LRU baseline).
    pub epoch_installs: u64,
}

impl LoadgenReport {
    /// The report as a `BENCH_<n>.json` `threaded` run entry.
    pub fn to_json(&self) -> JsonValue {
        let quant = |q: Option<u64>| q.map_or(JsonValue::Null, |v| JsonValue::Num(v as f64));
        JsonValue::obj(vec![
            ("cache", JsonValue::Str(self.cache.to_string())),
            ("threads", JsonValue::Num(self.threads as f64)),
            ("ops", JsonValue::Num(self.ops as f64)),
            ("hits", JsonValue::Num(self.hits as f64)),
            ("misses", JsonValue::Num(self.misses as f64)),
            ("seconds", JsonValue::Num(self.seconds)),
            ("ops_per_sec", JsonValue::Num(self.ops_per_sec)),
            ("p50_ns", quant(self.p50_ns)),
            ("p99_ns", quant(self.p99_ns)),
            ("batches", JsonValue::Num(self.batches as f64)),
            ("batch_panics", JsonValue::Num(self.batch_panics as f64)),
            ("poison_recoveries", JsonValue::Num(self.poison_recoveries as f64)),
            ("epoch_installs", JsonValue::Num(self.epoch_installs as f64)),
        ])
    }
}

/// A cache the load generator can serve requests from.
///
/// `fetch` returns whether the key was resident; `insert` stores the
/// origin-fetched value; `poisoning_probe` is the fault-injection hook —
/// it must panic, from inside a shard critical section when possible,
/// so injected faults actually poison locks rather than only unwinding
/// the worker.
pub trait ServeCache: Sync {
    /// Looks up `key`; `true` on hit.
    fn fetch(&self, key: u64, class: InsertionClass) -> bool;
    /// Inserts the value for `key` after a miss.
    fn insert(&self, key: u64, class: InsertionClass, value: u64);
    /// Panics with `msg` while holding `key`'s shard lock.
    fn poisoning_probe(&self, key: u64, class: InsertionClass, msg: &str);
    /// Poisoned-lock recoveries performed so far.
    fn poison_recoveries(&self) -> u64;
}

impl ServeCache for ConcurrentNucache<u64> {
    fn fetch(&self, key: u64, class: InsertionClass) -> bool {
        self.get_with(key, class, |_| ()).is_some()
    }

    fn insert(&self, key: u64, class: InsertionClass, value: u64) {
        self.put(key, class, value);
    }

    fn poisoning_probe(&self, key: u64, class: InsertionClass, msg: &str) {
        // Panic while the shard lock is held (hit or miss), poisoning
        // the shard so later accesses exercise lock_shard's recovery.
        let _ = class;
        self.with_shard(self.shard_of(key), |_| panic!("{}", msg.to_string()));
    }

    fn poison_recoveries(&self) -> u64 {
        ConcurrentNucache::poison_recoveries(self)
    }
}

/// One way of a [`ShardedLru`] set: tag, LRU stamp, value.
type LruWay = Option<(u64, u64, u64)>;

/// A shard of the lock-striped LRU baseline: plain set-associative LRU
/// over the same `sets × ways` geometry as a NUcache shard.
struct LruShard {
    ways: Vec<LruWay>,
    assoc: usize,
    set_mask: u64,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl LruShard {
    fn lookup(&mut self, key: u64) -> bool {
        let set = (key & self.set_mask) as usize;
        let tag = key >> self.set_mask.count_ones();
        self.stamp += 1;
        let base = set * self.assoc;
        for (t, stamp, _) in self.ways[base..base + self.assoc].iter_mut().flatten() {
            if *t == tag {
                *stamp = self.stamp;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    fn install(&mut self, key: u64, value: u64) {
        let set = (key & self.set_mask) as usize;
        let tag = key >> self.set_mask.count_ones();
        self.stamp += 1;
        let base = set * self.assoc;
        let mut victim = base;
        let mut oldest = u64::MAX;
        for (i, way) in self.ways[base..base + self.assoc].iter().enumerate() {
            match way {
                None => {
                    victim = base + i;
                    break;
                }
                Some((t, _, _)) if *t == tag => {
                    victim = base + i;
                    break;
                }
                Some((_, stamp, _)) if *stamp < oldest => {
                    oldest = *stamp;
                    victim = base + i;
                }
                Some(_) => {}
            }
        }
        self.ways[victim] = Some((tag, self.stamp, value));
    }
}

/// The lock-striped LRU baseline: `shards` independently locked
/// set-associative LRU shards, routed exactly like [`ConcurrentNucache`]
/// ([`mix64`] then [`FastRange`]), with the same poisoned-lock
/// recovery so fault-injected comparisons stay apples-to-apples.
pub struct ShardedLru {
    shards: Vec<Mutex<LruShard>>,
    route: FastRange,
    recoveries: AtomicU64,
}

impl ShardedLru {
    /// `shards` stripes of `sets × ways` LRU entries.
    pub fn new(shards: usize, sets: usize, ways: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(sets.is_power_of_two() && sets > 0, "sets must be a power of two");
        let shard = || LruShard {
            ways: vec![None; sets * ways],
            assoc: ways,
            set_mask: sets as u64 - 1,
            stamp: 0,
            hits: 0,
            misses: 0,
        };
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(shard())).collect(),
            route: FastRange::below(shards as u64),
            recoveries: AtomicU64::new(0),
        }
    }

    fn lock(&self, key: u64) -> std::sync::MutexGuard<'_, LruShard> {
        let i = self.route.reduce(mix64(key)) as usize;
        self.shards[i].lock().unwrap_or_else(|poisoned| {
            self.recoveries.fetch_add(1, Ordering::Relaxed);
            PoisonError::into_inner(poisoned)
        })
    }

    /// Total hits and misses across shards.
    pub fn counters(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            hits += s.hits;
            misses += s.misses;
        }
        (hits, misses)
    }
}

impl ServeCache for ShardedLru {
    fn fetch(&self, key: u64, class: InsertionClass) -> bool {
        let _ = class; // the baseline is class-blind by design
        self.lock(key).lookup(key)
    }

    fn insert(&self, key: u64, _class: InsertionClass, value: u64) {
        self.lock(key).install(key, value);
    }

    fn poisoning_probe(&self, key: u64, _class: InsertionClass, msg: &str) {
        let _guard = self.lock(key);
        panic!("{}", msg.to_string());
    }

    fn poison_recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }
}

/// Per-worker tallies, merged after the join.
struct WorkerStats {
    ops: u64,
    hits: u64,
    misses: u64,
    batches: u64,
    batch_panics: u64,
    latency: Log2Histogram,
}

/// One closed-loop worker: replays its trace stream in
/// [`BATCH_OPS`]-request batches until the deadline.
fn worker<C: ServeCache>(
    cache: &C,
    cfg: &LoadgenConfig,
    thread_id: usize,
    deadline: Instant,
) -> WorkerStats {
    let spec = cfg.workload.spec();
    let mut generator =
        TraceGen::new(&spec, CoreId::new(thread_id as u8), cfg.seed ^ thread_id as u64);
    let mut stats = WorkerStats {
        ops: 0,
        hits: 0,
        misses: 0,
        batches: 0,
        batch_panics: 0,
        latency: Log2Histogram::new(LATENCY_BUCKETS),
    };
    while Instant::now() < deadline {
        // Per-thread batch index: disjoint per thread so the seeded
        // plan faults reproducible batches regardless of interleaving.
        let batch_index = ((thread_id as u64) << 40) | stats.batches;
        stats.batches += 1;
        let fault = cfg
            .fault_plan
            .filter(|p| p.should_fault(FaultSite::ServeBatch, batch_index))
            .map(|p| p.message(FaultSite::ServeBatch, batch_index));
        let batch: Vec<(u64, InsertionClass)> = (&mut generator)
            .take(BATCH_OPS)
            .map(|a| (a.addr.line(BLOCK_BITS).0, InsertionClass::new(a.pc.0)))
            .collect();
        // The batch is the unit of panic isolation: an injected fault
        // unwinds out of the request loop (possibly poisoning a shard),
        // the generator abandons the rest of the batch and moves on.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for (i, &(key, class)) in batch.iter().enumerate() {
                if i == BATCH_OPS / 2 {
                    if let Some(msg) = &fault {
                        cache.poisoning_probe(key, class, msg);
                    }
                }
                let start = Instant::now();
                if cache.fetch(key, class) {
                    stats.hits += 1;
                } else {
                    // Simulated origin fetch: charged outside every
                    // lock, so concurrent misses overlap.
                    std::thread::sleep(cfg.backend);
                    cache.insert(key, class, key);
                    stats.misses += 1;
                }
                stats.latency.record(start.elapsed().as_nanos() as u64);
                stats.ops += 1;
            }
        }));
        if outcome.is_err() {
            stats.batch_panics += 1;
        }
    }
    stats
}

/// Drives `cache` with `cfg.threads` closed-loop workers and merges
/// their tallies. `cache_label` names the report; epoch installs and
/// poison recoveries are filled by the cache-specific wrappers.
pub fn run_loadgen<C: ServeCache>(
    cache: &C,
    cfg: &LoadgenConfig,
    cache_label: &'static str,
) -> LoadgenReport {
    assert!(cfg.threads >= 1, "need at least one worker");
    let start = Instant::now();
    let deadline = start + cfg.duration;
    let merged = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|thread_id| scope.spawn(move || worker(cache, cfg, thread_id, deadline)))
            .collect();
        let mut merged = WorkerStats {
            ops: 0,
            hits: 0,
            misses: 0,
            batches: 0,
            batch_panics: 0,
            latency: Log2Histogram::new(LATENCY_BUCKETS),
        };
        for handle in workers {
            // nucache-audit: allow(unwrap-in-lib) -- workers catch batch panics; join only fails on harness bugs
            let stats = handle.join().expect("workers never panic (batches unwind inside)");
            merged.ops += stats.ops;
            merged.hits += stats.hits;
            merged.misses += stats.misses;
            merged.batches += stats.batches;
            merged.batch_panics += stats.batch_panics;
            merged.latency.merge(&stats.latency);
        }
        merged
    });
    let seconds = start.elapsed().as_secs_f64();
    LoadgenReport {
        cache: cache_label,
        threads: cfg.threads,
        ops: merged.ops,
        hits: merged.hits,
        misses: merged.misses,
        seconds,
        ops_per_sec: merged.ops as f64 / seconds.max(1e-9),
        p50_ns: merged.latency.quantile(0.5),
        p99_ns: merged.latency.quantile(0.99),
        batches: merged.batches,
        batch_panics: merged.batch_panics,
        poison_recoveries: cache.poison_recoveries(),
        epoch_installs: 0,
    }
}

/// How often the background epoch thread sweeps the shards.
const EPOCH_SWEEP_INTERVAL: Duration = Duration::from_millis(1);

/// Runs the load against a sharded NUcache with its background epoch
/// thread (deferred selection, swept every millisecond).
pub fn run_nucache(cfg: &LoadgenConfig) -> LoadgenReport {
    let cache: Arc<ConcurrentNucache<u64>> =
        // nucache-audit: allow(unwrap-in-lib) -- geometry is static and checked by the unit tests
        Arc::new(ConcurrentNucache::init(ConcurrentConfig::new(cfg.shards, cfg.shard)).expect(
            "loadgen shard geometry is valid by construction (power-of-two sets, deli < ways)",
        ));
    let epochs = EpochThread::spawn(Arc::clone(&cache), EPOCH_SWEEP_INTERVAL);
    let mut report = run_loadgen(&*cache, cfg, "nucache");
    report.epoch_installs = epochs.stop();
    report.poison_recoveries = ServeCache::poison_recoveries(&*cache);
    report
}

/// Runs the load against the lock-striped LRU baseline (same shard
/// count and `sets × ways` geometry).
pub fn run_striped_lru(cfg: &LoadgenConfig) -> LoadgenReport {
    let cache = ShardedLru::new(cfg.shards, cfg.shard.sets, cfg.shard.ways);
    run_loadgen(&cache, cfg, "striped_lru")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(threads: usize) -> LoadgenConfig {
        let mut cfg = LoadgenConfig::new(threads, Duration::from_millis(80));
        cfg.backend = Duration::from_micros(20);
        cfg.shards = 4;
        cfg
    }

    #[test]
    fn nucache_loadgen_serves_and_installs_epochs() {
        let report = run_nucache(&quick(2));
        assert_eq!(report.cache, "nucache");
        assert!(report.ops > 0, "closed loop must complete requests");
        assert_eq!(report.ops, report.hits + report.misses);
        assert!(report.p99_ns.is_some(), "latencies were recorded");
        assert_eq!(report.batch_panics, 0, "no fault plan, no panics");
    }

    #[test]
    fn striped_lru_loadgen_serves() {
        let report = run_striped_lru(&quick(2));
        assert_eq!(report.cache, "striped_lru");
        assert!(report.ops > 0);
        assert_eq!(report.ops, report.hits + report.misses);
        assert_eq!(report.poison_recoveries, 0);
    }

    #[test]
    fn injected_faults_panic_batches_and_recover() {
        let mut cfg = quick(2);
        cfg.fault_plan = Some(FaultPlan::new(9));
        let report = run_nucache(&cfg);
        assert!(report.batch_panics > 0, "the 1-in-8 batch fault rate must fire");
        // The probe panics while holding the shard lock, so at least
        // one later access must have recovered a poisoned shard...
        assert!(report.poison_recoveries > 0, "{report:?}");
        // ...and every request after the panics still completed: the
        // cache recovered instead of wedging.
        assert_eq!(report.ops, report.hits + report.misses);
    }

    #[test]
    fn lru_shard_is_an_lru() {
        let mut shard =
            LruShard { ways: vec![None; 2], assoc: 2, set_mask: 0, stamp: 0, hits: 0, misses: 0 };
        assert!(!shard.lookup(1));
        shard.install(1, 10);
        assert!(!shard.lookup(2));
        shard.install(2, 20);
        assert!(shard.lookup(1)); // 1 is now MRU
        shard.install(3, 30); // evicts 2 (LRU), not 1
        assert!(shard.lookup(1));
        assert!(!shard.lookup(2));
        assert!(shard.lookup(3));
    }
}
