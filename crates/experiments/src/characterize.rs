//! Instrumented single-workload runs for the characterization figures.
//!
//! Figs. 1 and 2 look *inside* NUcache — the delinquent-PC tracker and
//! the Next-Use monitor — rather than at end-to-end performance, so this
//! module drives a workload through a private hierarchy into a concrete
//! [`NuCache`] instance (no trait object) and hands the instance back for
//! introspection.

use nucache_cache::hierarchy::{PrivateHierarchy, PrivateOutcome};
use nucache_cache::SharedLlc;
use nucache_common::{AccessKind, CoreId};
use nucache_core::{NuCache, NuCacheConfig};
use nucache_sim::SimConfig;
use nucache_trace::{SpecWorkload, TraceGen};

/// Runs `workload` alone for `accesses` memory accesses and returns the
/// NUcache instance with its monitors populated.
///
/// The monitor samples every set (`monitor_shift = 0`) so the histograms
/// of Fig. 2 are as dense as possible; selection runs with the default
/// cost-benefit strategy so Fig. 1/2 reflect steady-state behaviour.
pub fn characterize(workload: SpecWorkload, accesses: u64, config: &SimConfig) -> NuCache {
    let nucache_config = NuCacheConfig { monitor_shift: 0, ..NuCacheConfig::default() };
    let mut llc = NuCache::new(config.llc, 1, nucache_config);
    let core = CoreId::new(0);
    let mut hierarchy = PrivateHierarchy::new(core, config.l1, config.l2);
    let mut gen = TraceGen::new(&workload.spec(), core, config.seed);
    for access in gen.by_ref().take(accesses as usize) {
        if let PrivateOutcome::LlcAccess { writeback } =
            hierarchy.access(access.pc, access.addr.line(6), access.kind)
        {
            if let Some(wb) = writeback {
                llc.access(core, access.pc, wb, AccessKind::Write);
            }
            llc.access(core, access.pc, access.addr.line(6), access.kind);
        }
    }
    llc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterize_populates_monitors() {
        let config = SimConfig::demo();
        let llc = characterize(SpecWorkload::McfLike, 60_000, &config);
        assert!(llc.stats().misses > 0);
        assert!(!llc.tracker().is_empty());
        assert!(llc.monitor().sampled_accesses() > 0);
    }
}
