//! Figure generators (characterization, headline results, sensitivity).
//!
//! Every multi-run figure fans its simulations out through
//! [`nucache_sim::runner`]: jobs are enumerated up front, dispatched over
//! the worker pool, and the tables are then assembled serially from the
//! ordered results — so the emitted CSVs are identical at any `--jobs`
//! value.

use crate::characterize::characterize;
use crate::{emit, geomean, run_lengths};
use nucache_cache::CacheGeometry;
use nucache_common::table::{f2, f3, Table};
use nucache_core::{NuCacheConfig, SelectionStrategy};
use nucache_sim::runner::{default_jobs, parallel_map, Runner};
use nucache_sim::{Scheme, SimConfig};
use nucache_trace::{Mix, SpecWorkload};

fn base_config(cores: usize) -> SimConfig {
    let (warm, meas) = run_lengths();
    SimConfig::baseline(cores).with_run_lengths(warm, meas)
}

/// Fig. 1: cumulative LLC-miss coverage of the top-N delinquent PCs.
pub fn fig1() {
    let config = base_config(1);
    let mut t = Table::new(["workload", "pcs_tracked", "top1", "top2", "top4", "top8", "top16"]);
    let llcs =
        parallel_map(default_jobs(), &SpecWorkload::ALL, |&w| characterize(w, 400_000, &config));
    for (w, llc) in SpecWorkload::ALL.iter().zip(&llcs) {
        let tr = llc.tracker();
        t.row([
            w.name().to_string(),
            tr.len().to_string(),
            f2(tr.top_k_coverage(1)),
            f2(tr.top_k_coverage(2)),
            f2(tr.top_k_coverage(4)),
            f2(tr.top_k_coverage(8)),
            f2(tr.top_k_coverage(16)),
        ]);
    }
    emit("fig1_delinquent_pcs", "Cumulative miss coverage of top-N delinquent PCs", &t);
}

/// Fig. 2: Next-Use distance distributions of the top delinquent PCs.
pub fn fig2() {
    let config = base_config(1);
    let workloads = [
        SpecWorkload::SphinxLike,
        SpecWorkload::McfLike,
        SpecWorkload::SoplexLike,
        SpecWorkload::AstarLike,
        SpecWorkload::OmnetppLike,
        SpecWorkload::LibquantumLike,
    ];
    let mut t = Table::new(["workload", "pc_rank", "samples", "p25", "p50", "p75", "p90"]);
    let llcs = parallel_map(default_jobs(), &workloads, |&w| characterize(w, 400_000, &config));
    for (w, llc) in workloads.iter().zip(&llcs) {
        for (rank, (pc, _)) in llc.tracker().top_k(3).into_iter().enumerate() {
            if let Some(h) = llc.monitor().histogram(pc) {
                let q = |p: f64| h.quantile(p).map_or("inf".to_string(), |v| v.to_string());
                t.row([
                    w.name().to_string(),
                    (rank + 1).to_string(),
                    h.total().to_string(),
                    q(0.25),
                    q(0.5),
                    q(0.75),
                    q(0.9),
                ]);
            } else {
                t.row([
                    w.name().to_string(),
                    (rank + 1).to_string(),
                    "0".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    emit("fig2_next_use", "Next-Use distance quantiles (set-accesses) for top delinquent PCs", &t);
}

/// Fig. 3: single-core NUcache speedup over LRU.
pub fn fig3() {
    let runner = Runner::new(base_config(1));
    let mut t =
        Table::new(["workload", "lru_ipc", "nucache_ipc", "speedup", "lru_mpki", "nucache_mpki"]);
    let jobs: Vec<(Mix, Scheme)> = SpecWorkload::ALL
        .iter()
        .flat_map(|&w| {
            let mix = Mix::new(format!("solo_{}", w.name()), vec![w]);
            [(mix.clone(), Scheme::Lru), (mix, Scheme::nucache_default())]
        })
        .collect();
    let results = runner.run_jobs(&jobs);
    let mut speedups = Vec::new();
    for (w, pair) in SpecWorkload::ALL.iter().zip(results.chunks(2)) {
        let (lru, nuc) = (&pair[0], &pair[1]);
        let s = nuc.per_core[0].ipc / lru.per_core[0].ipc;
        speedups.push(s);
        t.row([
            w.name().to_string(),
            f3(lru.per_core[0].ipc),
            f3(nuc.per_core[0].ipc),
            f3(s),
            f2(lru.per_core[0].llc_mpki),
            f2(nuc.per_core[0].llc_mpki),
        ]);
    }
    t.row([
        "geomean".to_string(),
        "-".into(),
        "-".into(),
        f3(geomean(&speedups)),
        "-".into(),
        "-".into(),
    ]);
    emit("fig3_single_core", "Single-core NUcache speedup over LRU", &t);
}

/// One headline experiment: all mixes of a suite under the comparison
/// schemes; reports per-mix weighted speedup normalized to LRU, plus
/// ANTT. Returns (scheme names, per-scheme geomean normalized WS).
fn headline(id: &str, title: &str, cores: usize, mixes: &[Mix]) -> Vec<(String, f64)> {
    let runner = Runner::new(base_config(cores));
    let schemes = Scheme::headline_suite();
    let grid = runner.evaluate_grid(mixes, &schemes);
    let mut header: Vec<String> = vec!["mix".into()];
    for s in &schemes {
        header.push(format!("{}_ws", s.name()));
    }
    for s in &schemes[1..] {
        header.push(format!("{}_norm", s.name()));
    }
    let mut t = Table::new(header);
    let mut norm_acc: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
    let mut antt_table = Table::new({
        let mut h: Vec<String> = vec!["mix".into()];
        h.extend(schemes.iter().map(|s| format!("{}_antt", s.name())));
        h
    });
    for (mix, row_results) in mixes.iter().zip(&grid) {
        let mut row = vec![mix.name().to_string()];
        let mut antt_row = vec![mix.name().to_string()];
        let ws: Vec<f64> = row_results.iter().map(|(_, m)| m.weighted_speedup).collect();
        for (w, (_, m)) in ws.iter().zip(row_results) {
            row.push(f3(*w));
            antt_row.push(f3(m.antt));
        }
        let lru_ws = ws[0];
        for (k, w) in ws[1..].iter().enumerate() {
            let norm = w / lru_ws;
            norm_acc[k].push(norm);
            row.push(f3(norm));
        }
        t.row(row);
        antt_table.row(antt_row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    geo_row.extend(std::iter::repeat_n("-".to_string(), schemes.len()));
    let mut result = Vec::new();
    for (k, s) in schemes[1..].iter().enumerate() {
        let g = geomean(&norm_acc[k]);
        geo_row.push(f3(g));
        result.push((s.name(), g));
    }
    t.row(geo_row);
    emit(id, title, &t);
    emit(&format!("{id}_antt"), &format!("{title} — ANTT (lower is better)"), &antt_table);
    result
}

/// Fig. 5: dual-core headline (abstract: ≈9.6% over baseline).
pub fn fig5() -> Vec<(String, f64)> {
    headline(
        "fig5_dual_core",
        "2-core weighted speedup (normalized to LRU)",
        2,
        &Mix::dual_core_suite(),
    )
}

/// Fig. 6: quad-core headline (abstract: ≈30%).
pub fn fig6() -> Vec<(String, f64)> {
    headline(
        "fig6_quad_core",
        "4-core weighted speedup (normalized to LRU)",
        4,
        &Mix::quad_core_suite(),
    )
}

/// Fig. 7: eight-core headline (abstract: ≈33%).
pub fn fig7() -> Vec<(String, f64)> {
    headline(
        "fig7_eight_core",
        "8-core weighted speedup (normalized to LRU)",
        8,
        &Mix::eight_core_suite(),
    )
}

/// Fig. 4: sensitivity to the number of DeliWays (4-core subset).
pub fn fig4() {
    let mixes = &Mix::quad_core_suite()[..3];
    let runner = Runner::new(base_config(4));
    let deli_counts = [0usize, 2, 4, 6, 8, 10, 12];
    // 0 DeliWays is exactly the 16-way LRU baseline; it doubles as the
    // normalization reference for the other columns.
    let schemes: Vec<Scheme> = deli_counts
        .iter()
        .map(|&d| {
            if d == 0 {
                Scheme::Lru
            } else {
                Scheme::NuCache(NuCacheConfig::default().with_deli_ways(d))
            }
        })
        .collect();
    let grid = runner.evaluate_grid(mixes, &schemes);
    let mut header: Vec<String> = vec!["mix".into()];
    header.extend(deli_counts.iter().map(|d| format!("d{d}_norm_ws")));
    let mut t = Table::new(header);
    for (mix, row_results) in mixes.iter().zip(&grid) {
        let lru_ws = row_results[0].1.weighted_speedup;
        let mut row = vec![mix.name().to_string()];
        for (_, m) in row_results {
            row.push(f3(m.weighted_speedup / lru_ws));
        }
        t.row(row);
    }
    emit("fig4_deliways", "Sensitivity to DeliWays count (4-core, normalized WS)", &t);
}

/// Fig. 8: ANTT summary across core counts (NUcache vs LRU vs UCP).
pub fn fig8() {
    let mut t = Table::new(["cores", "mix", "lru_antt", "ucp_antt", "nucache_antt"]);
    let schemes = [Scheme::Lru, Scheme::Ucp, Scheme::nucache_default()];
    for (cores, mixes) in [
        (2usize, Mix::dual_core_suite()),
        (4, Mix::quad_core_suite()),
        (8, Mix::eight_core_suite()),
    ] {
        let runner = Runner::new(base_config(cores));
        // A representative subset per core count keeps runtime sane.
        let subset: Vec<Mix> = mixes.iter().take(4).cloned().collect();
        let grid = runner.evaluate_grid(&subset, &schemes);
        for (mix, row_results) in subset.iter().zip(&grid) {
            t.row([
                cores.to_string(),
                mix.name().to_string(),
                f3(row_results[0].1.antt),
                f3(row_results[1].1.antt),
                f3(row_results[2].1.antt),
            ]);
        }
    }
    emit("fig8_antt", "ANTT across core counts (lower is better)", &t);
}

/// Fig. 9: sensitivity to LLC capacity (4-core subset).
pub fn fig9() {
    let mixes = &Mix::quad_core_suite()[..3];
    let sizes_mb = [2u64, 4, 8, 16];
    let schemes = [Scheme::Lru, Scheme::nucache_default()];
    let mut header: Vec<String> = vec!["mix".into()];
    for mb in sizes_mb {
        header.push(format!("{mb}mb_lru_ws"));
        header.push(format!("{mb}mb_nucache_norm"));
    }
    let mut t = Table::new(header);
    let mut rows: Vec<Vec<String>> = mixes.iter().map(|m| vec![m.name().to_string()]).collect();
    for mb in sizes_mb {
        let config = base_config(4).with_llc(CacheGeometry::new(mb * 1024 * 1024, 16, 64));
        // Solo IPC depends on the LLC geometry, so each capacity gets its
        // own runner (and thus its own solo cache).
        let runner = Runner::new(config);
        let grid = runner.evaluate_grid(mixes, &schemes);
        for (i, row_results) in grid.iter().enumerate() {
            let lru_ws = row_results[0].1.weighted_speedup;
            rows[i].push(f3(lru_ws));
            rows[i].push(f3(row_results[1].1.weighted_speedup / lru_ws));
        }
    }
    for row in rows {
        t.row(row);
    }
    emit("fig9_cache_size", "Sensitivity to LLC capacity (4-core)", &t);
}

/// Fig. 10: sensitivity to the PC-selection epoch length (4-core subset).
pub fn fig10() {
    let mixes = &Mix::quad_core_suite()[..3];
    let epochs = [25_000u64, 50_000, 100_000, 200_000, 400_000];
    let runner = Runner::new(base_config(4));
    // Column 0 (LRU) is the normalization reference; the table reports
    // only the epoch columns.
    let mut schemes = vec![Scheme::Lru];
    schemes.extend(
        epochs.iter().map(|&e| Scheme::NuCache(NuCacheConfig::default().with_epoch_len(e))),
    );
    let grid = runner.evaluate_grid(mixes, &schemes);
    let mut header: Vec<String> = vec!["mix".into()];
    header.extend(epochs.iter().map(|e| format!("epoch_{}k", e / 1000)));
    let mut t = Table::new(header);
    for (mix, row_results) in mixes.iter().zip(&grid) {
        let lru_ws = row_results[0].1.weighted_speedup;
        let mut row = vec![mix.name().to_string()];
        for (_, m) in &row_results[1..] {
            row.push(f3(m.weighted_speedup / lru_ws));
        }
        t.row(row);
    }
    emit("fig10_epoch", "Sensitivity to selection-epoch length (normalized WS)", &t);
}

/// Fig. 12: OPT headroom — how much of the LRU→Belady gap each
/// PC-aware scheme closes, on single-core LLC-filtered traces.
pub fn fig12() {
    use nucache_cache::hierarchy::{PrivateHierarchy, PrivateOutcome};
    use nucache_cache::opt::optimal_misses;
    use nucache_cache::policy::{Lru, ShipPc};
    use nucache_cache::{BasicCache, SharedLlc};
    use nucache_common::{AccessKind, CoreId, LineAddr, Pc as PcT};
    use nucache_trace::TraceGen;

    let config = base_config(1);
    let accesses = if crate::quick_mode() { 300_000 } else { 800_000 };
    let mut t = Table::new([
        "workload",
        "llc_accesses",
        "lru_hit",
        "ship_hit",
        "nucache_hit",
        "opt_hit",
        "nucache_gap_closed",
    ]);
    let rows = parallel_map(default_jobs(), &SpecWorkload::ALL, |&w| {
        // Capture the LLC-filtered (pc, line) stream.
        let core = CoreId::new(0);
        let mut hierarchy = PrivateHierarchy::new(core, config.l1, config.l2);
        let mut llc_trace: Vec<(PcT, LineAddr)> = Vec::new();
        for a in TraceGen::new(&w.spec(), core, config.seed).take(accesses) {
            if let PrivateOutcome::LlcAccess { .. } = hierarchy.access(a.pc, a.addr.line(6), a.kind)
            {
                llc_trace.push((a.pc, a.addr.line(6)));
            }
        }
        if llc_trace.is_empty() {
            return [
                w.name().to_string(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ];
        }
        let lines: Vec<LineAddr> = llc_trace.iter().map(|&(_, l)| l).collect();
        let opt = optimal_misses(&config.llc, &lines);

        let mut lru = BasicCache::new(config.llc, Lru::new(&config.llc));
        let mut ship = BasicCache::new(config.llc, ShipPc::new(&config.llc));
        let mut nucache = nucache_core::NuCache::new(config.llc, 1, NuCacheConfig::default());
        for &(pc, line) in &llc_trace {
            lru.access(line, AccessKind::Read, core, pc);
            ship.access(line, AccessKind::Read, core, pc);
            nucache.access(core, pc, line, AccessKind::Read);
        }
        let lru_hr = lru.stats().hit_rate();
        let opt_hr = opt.stats.hit_rate();
        let nuc_hr = nucache.stats().hit_rate();
        let gap = opt_hr - lru_hr;
        let closed = if gap > 1e-6 { (nuc_hr - lru_hr) / gap } else { 0.0 };
        [
            w.name().to_string(),
            llc_trace.len().to_string(),
            f3(lru_hr),
            f3(ship.stats().hit_rate()),
            f3(nuc_hr),
            f3(opt_hr),
            f2(closed),
        ]
    });
    for row in rows {
        t.row(row);
    }
    emit("fig12_opt_headroom", "Belady-OPT headroom closed by PC-aware schemes (solo)", &t);
}

/// Fig. 11: PC-selection strategy ablation (4-core subset).
pub fn fig11() {
    let mixes = &Mix::quad_core_suite()[..3];
    let strategies = [
        ("cost-benefit", SelectionStrategy::CostBenefit),
        ("exhaustive", SelectionStrategy::Exhaustive),
        ("static-top8", SelectionStrategy::StaticTopK(8)),
        ("random-8", SelectionStrategy::Random(8)),
        ("none", SelectionStrategy::None),
    ];
    let runner = Runner::new(base_config(4));
    // Column 0 (LRU) is the normalization reference.
    let mut schemes = vec![Scheme::Lru];
    schemes.extend(
        strategies.iter().map(|(_, s)| Scheme::NuCache(NuCacheConfig::default().with_strategy(*s))),
    );
    let grid = runner.evaluate_grid(mixes, &schemes);
    let mut header: Vec<String> = vec!["mix".into()];
    header.extend(strategies.iter().map(|(n, _)| n.to_string()));
    let mut t = Table::new(header);
    for (mix, row_results) in mixes.iter().zip(&grid) {
        let lru_ws = row_results[0].1.weighted_speedup;
        let mut row = vec![mix.name().to_string()];
        for (_, m) in &row_results[1..] {
            row.push(f3(m.weighted_speedup / lru_ws));
        }
        t.row(row);
    }
    emit("fig11_selection_ablation", "PC-selection strategy ablation (normalized WS)", &t);
}
