//! Regenerates Fig. 12 (Belady-OPT headroom analysis).
fn main() {
    nucache_experiments::figs::fig12();
}
