//! Regenerates Fig. 12 (Belady-OPT headroom analysis).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig12_opt_headroom", || {
        nucache_experiments::figs::fig12();
    })
}
