//! Regenerates Table 1 (system configuration).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("table1_config", || {
        nucache_experiments::tables::table1();
    })
}
