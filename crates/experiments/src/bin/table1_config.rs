//! Regenerates Table 1 (system configuration).
fn main() {
    nucache_experiments::tables::table1();
}
