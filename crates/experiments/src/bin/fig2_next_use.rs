//! Regenerates Fig. 2 (Next-Use distance distributions).
fn main() {
    nucache_experiments::figs::fig2();
}
