//! Regenerates Fig. 2 (Next-Use distance distributions).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig2_next_use", || {
        nucache_experiments::figs::fig2();
    })
}
