//! `report` — renders a telemetry directory (JSONL streams plus
//! `manifest.json`, as written by any binary's `--telemetry DIR` flag)
//! into markdown epoch timelines: selection churn and DeliWays occupancy
//! over time, per stream.
//!
//! The markdown goes to stdout and to `DIR/report.md`.

use nucache_experiments::report::render_report;
use nucache_sim::args::Args;
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1)).map_err(|e| e.to_string())?;
    if args.flag("help") {
        println!("usage: report [--dir DIR]");
        println!("  --dir DIR  telemetry directory to render (default: target/telemetry)");
        return Ok(());
    }
    let dir = PathBuf::from(args.get_or("dir", "target/telemetry"));
    args.reject_unknown().map_err(|e| e.to_string())?;

    let markdown = render_report(&dir)?;
    print!("{markdown}");
    let out = dir.join("report.md");
    std::fs::write(&out, &markdown).map_err(|e| format!("writing {}: {e}", out.display()))?;
    eprintln!("[report] wrote {}", out.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try --help");
            ExitCode::FAILURE
        }
    }
}
