//! Regenerates Fig. 11 (PC-selection strategy ablation).
fn main() {
    nucache_experiments::figs::fig11();
}
