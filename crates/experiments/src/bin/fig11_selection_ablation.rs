//! Regenerates Fig. 11 (PC-selection strategy ablation).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig11_selection_ablation", || {
        nucache_experiments::figs::fig11();
    })
}
