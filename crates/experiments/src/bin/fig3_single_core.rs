//! Regenerates Fig. 3 (single-core NUcache vs LRU).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig3_single_core", || {
        nucache_experiments::figs::fig3();
    })
}
