//! Regenerates Fig. 3 (single-core NUcache vs LRU).
fn main() {
    nucache_experiments::figs::fig3();
}
