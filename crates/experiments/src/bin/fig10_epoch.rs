//! Regenerates Fig. 10 (selection-epoch sensitivity).
fn main() {
    nucache_experiments::figs::fig10();
}
