//! Regenerates Fig. 10 (selection-epoch sensitivity).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig10_epoch", || {
        nucache_experiments::figs::fig10();
    })
}
