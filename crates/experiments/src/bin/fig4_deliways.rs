//! Regenerates Fig. 4 (DeliWays sensitivity).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig4_deliways", || {
        nucache_experiments::figs::fig4();
    })
}
