//! Regenerates Fig. 4 (DeliWays sensitivity).
fn main() {
    nucache_experiments::figs::fig4();
}
