//! Runs every table and figure of the evaluation in sequence.
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let step = |name: &str, f: &dyn Fn()| {
        let t = Instant::now();
        f();
        eprintln!("[run_all] {name} done in {:.1}s", t.elapsed().as_secs_f64());
    };
    use nucache_experiments::{figs, tables};
    step("table1", &tables::table1);
    step("table3", &tables::table3);
    step("table4", &tables::table4);
    step("table2", &tables::table2);
    step("fig1", &figs::fig1);
    step("fig2", &figs::fig2);
    step("fig3", &figs::fig3);
    step("fig4", &figs::fig4);
    step("fig5", &|| {
        figs::fig5();
    });
    step("fig6", &|| {
        figs::fig6();
    });
    step("fig7", &|| {
        figs::fig7();
    });
    step("fig8", &figs::fig8);
    step("fig9", &figs::fig9);
    step("fig10", &figs::fig10);
    step("fig11", &figs::fig11);
    step("fig12", &figs::fig12);
    eprintln!("[run_all] total {:.1}s", t0.elapsed().as_secs_f64());
}
