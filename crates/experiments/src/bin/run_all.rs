//! Runs every table and figure of the evaluation.
//!
//! Simulations inside each step fan out over a worker pool (`--jobs N`,
//! `NUCACHE_JOBS`, default: available parallelism); emitted CSVs are
//! identical at any worker count. Per-step wall time and simulation
//! throughput land in `bench_summary.json` next to the CSVs.
//!
//! A step that panics is reported and skipped — the remaining steps
//! still run, every failure lands in the manifest's `failures` section
//! and in `failures.json` next to the CSVs, and the process exits
//! non-zero naming every failed step. Within a step, the runner isolates
//! panicking jobs the same way (see `DESIGN.md` §11), so partial results
//! survive as far as each figure allows.
//! `--telemetry DIR` streams every simulation's events into DIR and
//! writes a single `manifest.json` covering the whole evaluation.
//! `--inject-faults SEED` deterministically injects worker panics and
//! I/O errors to exercise all of the above.

use nucache_experiments::panic_message;
use nucache_sim::args::Args;
use nucache_sim::telemetry::{git_revision, take_manifest_config, Manifest};
use nucache_sim::{
    default_jobs, set_default_jobs, take_degradations, take_failures, take_simulated_accesses,
    FailureRecord, FaultPlan,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct StepStats {
    id: &'static str,
    seconds: f64,
    simulated_accesses: u64,
}

fn write_bench_summary(jobs: usize, total_seconds: f64, steps: &[StepStats]) {
    let path = nucache_experiments::out_dir().join("bench_summary.json");
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str(&format!("  \"quick\": {},\n", nucache_experiments::quick_mode()));
    json.push_str(&format!("  \"total_seconds\": {total_seconds:.3},\n"));
    json.push_str("  \"steps\": [\n");
    for (i, s) in steps.iter().enumerate() {
        let rate = if s.seconds > 0.0 { s.simulated_accesses as f64 / s.seconds } else { 0.0 };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"seconds\": {:.3}, \"simulated_accesses\": {}, \"accesses_per_sec\": {:.0}}}{}\n",
            s.id,
            s.seconds,
            s.simulated_accesses,
            rate,
            if i + 1 < steps.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, &json)
    };
    match write() {
        Ok(()) => eprintln!("[run_all] wrote {}", path.display()),
        Err(e) => eprintln!("[run_all] failed to write {}: {e}", path.display()),
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(argv.iter().cloned()).map_err(|e| e.to_string())?;
    if args.flag("help") {
        println!(
            "options: --jobs N (worker threads; default: NUCACHE_JOBS or available parallelism) \
             --telemetry DIR --inject-faults SEED --help"
        );
        return Ok(());
    }
    let jobs: usize = args.get_num("jobs", 0).map_err(|e| e.to_string())?;
    let telemetry = args.get_or("telemetry", "").to_string();
    let inject = args.get_or("inject-faults", "").to_string();
    args.reject_unknown().map_err(|e| e.to_string())?;
    if jobs >= 1 {
        set_default_jobs(jobs);
    }
    if !inject.is_empty() {
        let seed: u64 =
            inject.parse().map_err(|_| format!("--inject-faults: bad seed '{inject}'"))?;
        nucache_sim::set_fault_plan(Some(FaultPlan::new(seed)));
        eprintln!("[run_all] injecting faults with plan seed {seed}");
    }
    let jobs = default_jobs();
    // Runners re-derive this policy themselves; surfacing it here makes
    // a watchdog flag in the log self-explanatory.
    let policy = nucache_sim::JobPolicy::from_env();
    let watchdog = match policy.watchdog_secs {
        Some(nucache_sim::runner::DEFAULT_WATCHDOG_SECS) => String::new(),
        Some(secs) => format!(", watchdog {secs}s"),
        None => ", watchdog off".to_string(),
    };
    let quick = match nucache_experiments::quick_divisor() {
        1 => String::new(),
        div => format!(", quick /{div}"),
    };
    eprintln!(
        "[run_all] using {jobs} worker thread{}, {} retr{}{watchdog}{quick}",
        if jobs == 1 { "" } else { "s" },
        policy.max_retries,
        if policy.max_retries == 1 { "y" } else { "ies" },
    );
    let telemetry_dir = (!telemetry.is_empty()).then(|| PathBuf::from(telemetry));
    if let Some(dir) = &telemetry_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        nucache_sim::set_default_telemetry_dir(Some(dir));
        let _ = take_manifest_config();
    }

    let t0 = Instant::now();
    let mut stats: Vec<StepStats> = Vec::new();
    let mut failed_steps: Vec<&'static str> = Vec::new();
    take_simulated_accesses(); // discard anything counted before the first step
    let _ = take_failures(); // clean registries for this run
    let _ = take_degradations();
    let mut step = |name: &'static str, f: &dyn Fn()| {
        let t = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(f));
        let seconds = t.elapsed().as_secs_f64();
        let simulated_accesses = take_simulated_accesses();
        match outcome {
            Ok(()) if simulated_accesses > 0 => eprintln!(
                "[run_all] {name} done in {seconds:.1}s ({:.0} accesses/sec)",
                simulated_accesses as f64 / seconds.max(1e-9)
            ),
            Ok(()) => eprintln!("[run_all] {name} done in {seconds:.1}s"),
            Err(payload) => {
                // The panic message itself already went to stderr via the
                // default hook; record the step and move on.
                eprintln!("[run_all] {name} FAILED after {seconds:.1}s");
                failed_steps.push(name);
                nucache_sim::note_failure(FailureRecord {
                    stage: name.to_string(),
                    job: None,
                    index: None,
                    attempts: 1,
                    message: panic_message(payload.as_ref()),
                });
            }
        }
        stats.push(StepStats { id: name, seconds, simulated_accesses });
    };
    use nucache_experiments::{figs, tables};
    step("table1", &tables::table1);
    step("table3", &tables::table3);
    step("table4", &tables::table4);
    step("table2", &tables::table2);
    step("fig1", &figs::fig1);
    step("fig2", &figs::fig2);
    step("fig3", &figs::fig3);
    step("fig4", &figs::fig4);
    step("fig5", &|| {
        figs::fig5();
    });
    step("fig6", &|| {
        figs::fig6();
    });
    step("fig7", &|| {
        figs::fig7();
    });
    step("fig8", &figs::fig8);
    step("fig9", &figs::fig9);
    step("fig10", &figs::fig10);
    step("fig11", &figs::fig11);
    step("fig12", &figs::fig12);
    let total = t0.elapsed().as_secs_f64();
    eprintln!("[run_all] total {total:.1}s");
    write_bench_summary(jobs, total, &stats);
    eprintln!("[run_all] results in {}", nucache_experiments::out_dir().display());
    let failures = take_failures();
    let notes = take_degradations();
    nucache_experiments::write_failures_json(&failures);
    let n_failures = failures.len();
    if let Some(dir) = &telemetry_dir {
        let manifest = Manifest {
            experiment: "run_all".to_string(),
            argv,
            git_revision: git_revision(),
            wall_seconds: total,
            jobs: jobs as u64,
            quick: nucache_experiments::quick_mode(),
            config: take_manifest_config(),
            streams: Vec::new(),
            failures,
            notes,
        };
        match nucache_sim::write_manifest(dir, &manifest) {
            Ok(path) => eprintln!("[run_all] telemetry in {} ({})", dir.display(), path.display()),
            Err(e) => eprintln!("[run_all] failed to write manifest in {}: {e}", dir.display()),
        }
    }
    if !failed_steps.is_empty() {
        return Err(format!(
            "{} step(s) failed ({} failure record(s)): {}",
            failed_steps.len(),
            n_failures,
            failed_steps.join(", ")
        ));
    }
    if n_failures > 0 {
        return Err(format!("{n_failures} failure record(s); see failures.json"));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try --help");
            ExitCode::FAILURE
        }
    }
}
