//! Regenerates Fig. 8 (ANTT across core counts).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig8_antt", || {
        nucache_experiments::figs::fig8();
    })
}
