//! Regenerates Fig. 8 (ANTT across core counts).
fn main() {
    nucache_experiments::figs::fig8();
}
