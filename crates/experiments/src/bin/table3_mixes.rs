//! Regenerates Table 3 (multiprogrammed mixes).
fn main() {
    nucache_experiments::tables::table3();
}
