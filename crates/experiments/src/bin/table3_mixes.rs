//! Regenerates Table 3 (multiprogrammed mixes).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("table3_mixes", || {
        nucache_experiments::tables::table3();
    })
}
