//! Regenerates Fig. 5 (2-core headline comparison).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig5_dual_core", || {
        let g = nucache_experiments::figs::fig5();
        println!("\ngeomean normalized WS over LRU: {g:?}");
    })
}
