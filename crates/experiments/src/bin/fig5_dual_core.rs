//! Regenerates Fig. 5 (2-core headline comparison).
fn main() {
    let g = nucache_experiments::figs::fig5();
    println!("\ngeomean normalized WS over LRU: {g:?}");
}
