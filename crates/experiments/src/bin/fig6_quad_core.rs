//! Regenerates Fig. 6 (4-core headline comparison).
fn main() {
    let g = nucache_experiments::figs::fig6();
    println!("\ngeomean normalized WS over LRU: {g:?}");
}
