//! Regenerates Fig. 6 (4-core headline comparison).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig6_quad_core", || {
        let g = nucache_experiments::figs::fig6();
        println!("\ngeomean normalized WS over LRU: {g:?}");
    })
}
