//! Regenerates Table 4 (storage overhead).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("table4_overhead", || {
        nucache_experiments::tables::table4();
    })
}
