//! Regenerates Table 4 (storage overhead).
fn main() {
    nucache_experiments::tables::table4();
}
