//! Regenerates Fig. 7 (8-core headline comparison).
fn main() {
    let g = nucache_experiments::figs::fig7();
    println!("\ngeomean normalized WS over LRU: {g:?}");
}
