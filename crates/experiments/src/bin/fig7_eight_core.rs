//! Regenerates Fig. 7 (8-core headline comparison).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig7_eight_core", || {
        let g = nucache_experiments::figs::fig7();
        println!("\ngeomean normalized WS over LRU: {g:?}");
    })
}
