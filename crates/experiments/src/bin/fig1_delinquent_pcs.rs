//! Regenerates Fig. 1 (delinquent-PC miss concentration).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig1_delinquent_pcs", || {
        nucache_experiments::figs::fig1();
    })
}
