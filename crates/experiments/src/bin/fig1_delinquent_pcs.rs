//! Regenerates Fig. 1 (delinquent-PC miss concentration).
fn main() {
    nucache_experiments::figs::fig1();
}
