//! `simulate` — the general-purpose CLI front-end to the simulator.
//!
//! ```text
//! cargo run --release -p nucache-experiments --bin simulate -- \
//!     --cores 4 --scheme nucache --deli-ways 8 \
//!     --workloads sphinx_like,libquantum_like,mcf_like,lbm_like \
//!     --warmup 300000 --measure 1000000 --llc-mb 4 --seed 7
//! ```
//!
//! `--scheme` accepts `lru`, `dip`, `drrip`, `tadip`, `ucp`, `pipp`,
//! `nucache`. `--workloads` is a comma-separated list with one entry per
//! core (defaults cycle the roster). `--normalize` also runs the solo
//! baselines and reports weighted speedup / ANTT. `--audit` runs the
//! differential invariant oracle alongside the simulation: every
//! tag-array operation is mirrored into a naive reference model and
//! NUcache's epoch invariants are checked; any divergence aborts the run.

use nucache_cache::CacheGeometry;
use nucache_common::table::{f2, f3, Table};
use nucache_core::NuCacheConfig;
use nucache_sim::args::Args;
use nucache_sim::telemetry::{git_revision, take_manifest_config, Manifest};
use nucache_sim::{run_mix, Runner, Scheme, SimConfig};
use nucache_trace::{Mix, SpecWorkload};
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(argv.iter().cloned()).map_err(|e| e.to_string())?;
    if args.flag("help") {
        println!(
            "options: --cores N --scheme NAME --workloads a,b,... --llc-mb N \
             --warmup N --measure N --seed N --deli-ways N --epoch N --normalize --jobs N \
             --telemetry DIR --audit --help"
        );
        return Ok(());
    }
    let cores: usize = args.get_num("cores", 2).map_err(|e| e.to_string())?;
    if cores == 0 || cores > 64 {
        return Err("--cores must be in 1..=64".into());
    }
    let scheme_name = args.get_or("scheme", "nucache").to_string();
    // NUCACHE_QUICK=1 shrinks the default run lengths (explicit --warmup
    // / --measure always win).
    let (default_warmup, default_measure) = nucache_experiments::run_lengths();
    let warmup: u64 = args.get_num("warmup", default_warmup).map_err(|e| e.to_string())?;
    let measure: u64 = args.get_num("measure", default_measure).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_num("seed", 0x5eed_2011).map_err(|e| e.to_string())?;
    let llc_mb: u64 = args.get_num("llc-mb", cores as u64).map_err(|e| e.to_string())?;
    let deli: usize = args.get_num("deli-ways", 8).map_err(|e| e.to_string())?;
    let epoch: u64 = args.get_num("epoch", 100_000).map_err(|e| e.to_string())?;
    let workloads_arg = args.get_or("workloads", "").to_string();
    let normalize = args.flag("normalize");
    let audit = args.flag("audit");
    let jobs: usize = args.get_num("jobs", 0).map_err(|e| e.to_string())?;
    let telemetry = args.get_or("telemetry", "").to_string();
    args.reject_unknown().map_err(|e| e.to_string())?;
    if jobs >= 1 {
        nucache_sim::set_default_jobs(jobs);
    }
    let telemetry_dir = (!telemetry.is_empty()).then(|| PathBuf::from(telemetry));
    if let Some(dir) = &telemetry_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        nucache_sim::set_default_telemetry_dir(Some(dir));
        let _ = take_manifest_config();
    }
    let t0 = std::time::Instant::now();

    let workloads: Vec<SpecWorkload> = if workloads_arg.is_empty() {
        SpecWorkload::ALL.iter().copied().cycle().take(cores).collect()
    } else {
        let parsed: Result<Vec<_>, String> = workloads_arg
            .split(',')
            .map(|n| {
                SpecWorkload::from_name(n.trim())
                    .ok_or_else(|| format!("unknown workload '{n}' (see table2_workloads)"))
            })
            .collect();
        parsed?
    };
    if workloads.len() != cores {
        return Err(format!("--workloads lists {} entries for {cores} cores", workloads.len()));
    }

    let scheme = match scheme_name.as_str() {
        "lru" => Scheme::Lru,
        "dip" => Scheme::Dip,
        "drrip" => Scheme::Drrip,
        "tadip" => Scheme::Tadip,
        "ucp" => Scheme::Ucp,
        "pipp" => Scheme::Pipp,
        "nucache" => {
            Scheme::NuCache(NuCacheConfig::default().with_deli_ways(deli).with_epoch_len(epoch))
        }
        other => return Err(format!("unknown scheme '{other}'")),
    };

    let config = SimConfig::baseline(cores)
        .with_llc(CacheGeometry::new(llc_mb * 1024 * 1024, 16, 64))
        .with_run_lengths(warmup, measure)
        .with_seed(seed);
    let mix = Mix::new("cli", workloads);

    if audit && normalize {
        return Err("--audit and --normalize cannot be combined (audit one run at a time)".into());
    }

    println!("scheme={scheme} cores={cores} llc={llc_mb}MB warmup={warmup} measure={measure}\n");
    let mut t = Table::new(["core", "workload", "ipc", "llc_mpki", "llc_hit_rate"]);
    if audit {
        // A completed audited run means zero divergences: the oracle
        // panics at the first disagreement with the reference model.
        let (result, stats) = nucache_sim::run_mix_audited(&config, &mix, &scheme);
        for (i, c) in result.per_core.iter().enumerate() {
            t.row([
                i.to_string(),
                c.workload.clone(),
                f3(c.ipc),
                f2(c.llc_mpki),
                f2(c.llc.hit_rate()),
            ]);
        }
        print!("{}", t.to_text());
        println!("\nLLC totals: {}", result.llc_totals);
        println!(
            "audit: {} array ops mirrored, {} epoch checks, 0 divergences",
            stats.array_ops, stats.epoch_checks
        );
    } else if normalize {
        // The runner computes the mix run and the per-workload solo
        // baselines concurrently.
        let runner = Runner::new(config);
        let grid = runner.evaluate_grid(std::slice::from_ref(&mix), std::slice::from_ref(&scheme));
        let (result, metrics) = &grid[0][0];
        for (i, c) in result.per_core.iter().enumerate() {
            t.row([
                i.to_string(),
                c.workload.clone(),
                f3(c.ipc),
                f2(c.llc_mpki),
                f2(c.llc.hit_rate()),
            ]);
        }
        print!("{}", t.to_text());
        println!("\nweighted speedup: {:.3}", metrics.weighted_speedup);
        println!("ANTT:             {:.3}", metrics.antt);
        println!("throughput:       {:.3}", metrics.throughput);
        println!("fairness:         {:.3}", metrics.fairness);
    } else {
        let result = if let Some(spec) = nucache_sim::TelemetrySpec::from_default_dir() {
            nucache_sim::telemetry::note_manifest_config(&config);
            let path =
                nucache_sim::telemetry::stream_path(&spec.dir, 0, mix.name(), &scheme.name());
            let mut sink = nucache_common::JsonlSink::create(&path)
                .map_err(|e| format!("creating telemetry stream {}: {e}", path.display()))?;
            let r = nucache_sim::run_mix_telemetry(
                &config,
                &mix,
                &scheme,
                spec.snapshot_interval,
                &mut sink,
            );
            sink.finish()
                .map_err(|e| format!("writing telemetry stream {}: {e}", path.display()))?;
            r
        } else {
            run_mix(&config, &mix, &scheme)
        };
        for (i, c) in result.per_core.iter().enumerate() {
            t.row([
                i.to_string(),
                c.workload.clone(),
                f3(c.ipc),
                f2(c.llc_mpki),
                f2(c.llc.hit_rate()),
            ]);
        }
        print!("{}", t.to_text());
        println!("\nLLC totals: {}", result.llc_totals);
    }
    if let Some(dir) = &telemetry_dir {
        let manifest = Manifest {
            experiment: "simulate".to_string(),
            argv,
            git_revision: git_revision(),
            wall_seconds: t0.elapsed().as_secs_f64(),
            jobs: nucache_sim::default_jobs() as u64,
            quick: nucache_experiments::quick_mode(),
            config: take_manifest_config(),
            streams: Vec::new(),
            failures: nucache_sim::take_failures(),
            notes: nucache_sim::take_degradations(),
        };
        let path = nucache_sim::write_manifest(dir, &manifest)
            .map_err(|e| format!("writing manifest in {}: {e}", dir.display()))?;
        println!("[telemetry] wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try --help");
            ExitCode::FAILURE
        }
    }
}
