//! Regenerates Fig. 9 (LLC-capacity sensitivity).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("fig9_cache_size", || {
        nucache_experiments::figs::fig9();
    })
}
