//! Regenerates Fig. 9 (LLC-capacity sensitivity).
fn main() {
    nucache_experiments::figs::fig9();
}
