//! Regenerates Table 2 (workload inventory).
fn main() {
    nucache_experiments::tables::table2();
}
