//! Regenerates Table 2 (workload inventory).
fn main() -> std::process::ExitCode {
    nucache_experiments::cli_run("table2_workloads", || {
        nucache_experiments::tables::table2();
    })
}
