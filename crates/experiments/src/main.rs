//! `run_all` lives in bin/; this main delegates there for `cargo run -p nucache-experiments`.
#![forbid(unsafe_code)]
fn main() {
    eprintln!("use the per-figure binaries, e.g. `cargo run --release -p nucache-experiments --bin fig5_dual_core`");
}
