//! Renders telemetry JSONL streams back into human-readable epoch
//! timelines (the `report` binary is a thin wrapper over this module).
//!
//! Input is a directory produced by any experiment binary's
//! `--telemetry DIR` flag: one `NNN_mix__scheme.jsonl` stream per
//! simulation plus a `manifest.json`. Output is markdown — a run summary
//! table across streams, then a selection-epoch timeline per NUcache
//! stream showing chosen-set churn and DeliWays occupancy over time.

use nucache_common::json::{self, JsonValue};
use nucache_common::telemetry::{Event, Stage};
use std::fmt::Write as _;
use std::path::Path;

/// One NUcache selection epoch, reduced to timeline columns.
#[derive(Debug, Clone)]
pub struct SelEpochRow {
    /// Epoch number (as reported by the scheme).
    pub epoch: u64,
    /// Size of the chosen delinquent-PC set.
    pub chosen: usize,
    /// PCs newly chosen relative to the previous epoch.
    pub added: usize,
    /// PCs dropped relative to the previous epoch.
    pub dropped: usize,
    /// DeliWays hits during the epoch's window.
    pub deli_hits: u64,
    /// DeliWays fills during the epoch's window.
    pub deli_fills: u64,
    /// Valid DeliWays lines at the snapshot.
    pub occupancy: u64,
    /// Total DeliWays lines.
    pub capacity: u64,
    /// Expected DeliWays hits the selector projected for the epoch.
    pub expected_hits: u64,
}

/// Everything the report needs from one JSONL stream.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Stream file name.
    pub file: String,
    /// Mix simulated.
    pub mix: String,
    /// Scheme name.
    pub scheme: String,
    /// `llc_epoch` snapshots seen in the measurement stage.
    pub measure_epochs: u64,
    /// Selection-epoch timeline (empty for non-NUcache schemes).
    pub selection: Vec<SelEpochRow>,
    /// Selection churn: epochs whose chosen set differed from the
    /// previous epoch's (the same definition as
    /// `CounterSink::transitions`).
    pub churn: u64,
    /// Final aggregate LLC hit rate.
    pub hit_rate: f64,
    /// Final per-core IPCs.
    pub ipcs: Vec<f64>,
}

/// Parses one JSONL stream file into events.
///
/// # Errors
///
/// Returns an error when the file is unreadable, a line is not valid
/// JSON, or a line is not a recognized event.
pub fn load_events(path: &Path) -> Result<Vec<Event>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let values =
        json::parse_jsonl(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            Event::from_json(v).ok_or_else(|| {
                format!("{}: line {} is not a telemetry event", path.display(), i + 1)
            })
        })
        .collect()
}

/// Reduces one stream's events to the report's summary form.
pub fn summarize(file: &str, events: &[Event]) -> StreamSummary {
    let mut summary = StreamSummary {
        file: file.to_string(),
        mix: String::new(),
        scheme: String::new(),
        measure_epochs: 0,
        selection: Vec::new(),
        churn: 0,
        hit_rate: 0.0,
        ipcs: Vec::new(),
    };
    let mut previous_chosen: Option<Vec<nucache_common::Pc>> = None;
    for event in events {
        match event {
            Event::RunStart { mix, scheme, .. } => {
                summary.mix = mix.clone();
                summary.scheme = scheme.clone();
            }
            Event::LlcEpoch { stage: Stage::Measure, .. } => summary.measure_epochs += 1,
            Event::LlcEpoch { .. } => {}
            Event::SelectionEpoch {
                epoch,
                chosen,
                expected_hits,
                deli_hits,
                deli_fills,
                deli_occupancy,
                deli_capacity,
                ..
            } => {
                let (added, dropped) = match &previous_chosen {
                    None => (chosen.len(), 0),
                    Some(prev) => (
                        chosen.iter().filter(|pc| !prev.contains(pc)).count(),
                        prev.iter().filter(|pc| !chosen.contains(pc)).count(),
                    ),
                };
                if previous_chosen.as_ref().is_some_and(|prev| prev != chosen) {
                    summary.churn += 1;
                }
                previous_chosen = Some(chosen.clone());
                summary.selection.push(SelEpochRow {
                    epoch: *epoch,
                    chosen: chosen.len(),
                    added,
                    dropped,
                    deli_hits: *deli_hits,
                    deli_fills: *deli_fills,
                    occupancy: *deli_occupancy,
                    capacity: *deli_capacity,
                    expected_hits: *expected_hits,
                });
            }
            Event::RunEnd { ipcs, totals, .. } => {
                summary.ipcs = ipcs.clone();
                summary.hit_rate = totals.hit_rate();
            }
        }
    }
    summary
}

/// Maximum timeline rows rendered per stream; longer timelines are
/// sampled evenly (first and last epochs always shown).
const MAX_TIMELINE_ROWS: usize = 16;

fn render_manifest(out: &mut String, manifest: &JsonValue) {
    let s = |key: &str| manifest.get(key).and_then(JsonValue::as_str).unwrap_or("?").to_string();
    let n = |key: &str| manifest.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
    let _ = writeln!(out, "# Telemetry report: {}\n", s("experiment"));
    let _ = writeln!(out, "- git revision: `{}`", s("git_revision"));
    let _ = writeln!(
        out,
        "- wall time: {:.1}s with {} worker thread(s){}",
        n("wall_seconds"),
        n("jobs"),
        if manifest.get("quick").and_then(JsonValue::as_bool) == Some(true) {
            " (quick mode)"
        } else {
            ""
        }
    );
    if let Some(config) = manifest.get("config").filter(|c| !matches!(c, JsonValue::Null)) {
        let c = |key: &str| config.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        let _ = writeln!(
            out,
            "- config: {} core(s), {} KiB {}-way LLC, warmup {} / measure {} accesses per core, seed {}",
            c("num_cores"),
            c("llc_bytes") / 1024,
            c("llc_associativity"),
            c("warmup_accesses"),
            c("measure_accesses"),
            c("seed"),
        );
    }
    let _ = writeln!(out);
}

fn render_summary_table(out: &mut String, streams: &[StreamSummary]) {
    let _ = writeln!(out, "## Streams\n");
    let _ = writeln!(
        out,
        "| stream | mix | scheme | LLC hit rate | sel. epochs | churn | final occupancy |"
    );
    let _ = writeln!(out, "|---|---|---|---:|---:|---:|---:|");
    for s in streams {
        let occupancy = s
            .selection
            .last()
            .map_or("-".to_string(), |e| format!("{}/{}", e.occupancy, e.capacity));
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.3} | {} | {} | {} |",
            s.file,
            s.mix,
            s.scheme,
            s.hit_rate,
            s.selection.len(),
            s.churn,
            occupancy,
        );
    }
    let _ = writeln!(out);
}

fn render_timeline(out: &mut String, s: &StreamSummary) {
    let _ = writeln!(out, "## {} — selection timeline\n", s.file);
    let _ = writeln!(
        out,
        "mix `{}` under `{}`: {} selection epoch(s), churn {} ({} measurement snapshot(s))\n",
        s.mix,
        s.scheme,
        s.selection.len(),
        s.churn,
        s.measure_epochs,
    );
    let _ = writeln!(
        out,
        "| epoch | chosen | +new | -dropped | deli hits | deli fills | occupancy | expected hits |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|---:|---:|");
    let rows = sample_rows(s.selection.len(), MAX_TIMELINE_ROWS);
    for &i in &rows {
        let e = &s.selection[i];
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {}/{} | {} |",
            e.epoch,
            e.chosen,
            e.added,
            e.dropped,
            e.deli_hits,
            e.deli_fills,
            e.occupancy,
            e.capacity,
            e.expected_hits,
        );
    }
    if rows.len() < s.selection.len() {
        let _ = writeln!(out, "\n(showing {} of {} epochs)", rows.len(), s.selection.len());
    }
    let _ = writeln!(out);
}

/// Evenly samples `want` indices out of `0..len`, always keeping the
/// endpoints.
fn sample_rows(len: usize, want: usize) -> Vec<usize> {
    if len <= want {
        return (0..len).collect();
    }
    let mut rows: Vec<usize> = (0..want).map(|k| k * (len - 1) / (want - 1)).collect();
    rows.dedup();
    rows
}

/// Renders the full markdown report for a telemetry directory.
///
/// # Errors
///
/// Returns an error when the directory has no JSONL streams or a stream
/// fails to parse.
pub fn render_report(dir: &Path) -> Result<String, String> {
    let manifest_path = dir.join("manifest.json");
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => Some(
            json::parse(&text).map_err(|e| format!("parsing {}: {e}", manifest_path.display()))?,
        ),
        Err(_) => None,
    };

    let mut files: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .jsonl streams in {}", dir.display()));
    }

    let mut streams = Vec::new();
    for file in &files {
        let events = load_events(&dir.join(file))?;
        streams.push(summarize(file, &events));
    }

    let mut out = String::new();
    match &manifest {
        Some(m) => render_manifest(&mut out, m),
        None => {
            let _ = writeln!(out, "# Telemetry report: {}\n", dir.display());
        }
    }
    render_summary_table(&mut out, &streams);
    for s in &streams {
        if !s.selection.is_empty() {
            render_timeline(&mut out, s);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_common::telemetry::{JsonlSink, PcSnapshot};
    use nucache_common::{CacheStats, EventSink, Pc};

    fn selection(epoch: u64, chosen: &[u64], occupancy: u64) -> Event {
        Event::SelectionEpoch {
            epoch,
            window_accesses: 1000,
            chosen: chosen.iter().map(|&p| Pc(p)).collect(),
            expected_hits: 40,
            extra_lifetime: 800,
            deli_hits: 30,
            deli_fills: 90,
            deli_occupancy: occupancy,
            deli_capacity: 64,
            top_pcs: Vec::<PcSnapshot>::new(),
        }
    }

    fn synthetic_events() -> Vec<Event> {
        let mut totals = CacheStats::default();
        totals.record_hit();
        totals.record_miss();
        vec![
            Event::RunStart { mix: "m".into(), scheme: "nucache-d8".into(), cores: 2, seed: 1 },
            selection(0, &[1, 2], 10),
            selection(1, &[1, 2], 20),
            selection(2, &[1, 3], 30),
            Event::RunEnd {
                scheme: "nucache-d8".into(),
                ipcs: vec![0.5, 0.75],
                per_core: vec![totals, totals],
                totals,
            },
        ]
    }

    #[test]
    fn summarize_counts_churn_and_occupancy() {
        let s = summarize("000_m__nucache-d8.jsonl", &synthetic_events());
        assert_eq!(s.mix, "m");
        assert_eq!(s.scheme, "nucache-d8");
        assert_eq!(s.selection.len(), 3);
        assert_eq!(s.churn, 1, "only epoch 2 changed the chosen set");
        assert_eq!(s.selection[2].added, 1);
        assert_eq!(s.selection[2].dropped, 1);
        assert_eq!(s.selection.last().unwrap().occupancy, 30);
        assert_eq!(s.ipcs, vec![0.5, 0.75]);
        assert!((s.hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_a_jsonl_directory() {
        let dir = std::env::temp_dir().join(format!("nucache-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("000_m__nucache-d8.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        for e in synthetic_events() {
            sink.record_event(&e);
        }
        sink.finish().unwrap();

        let events = load_events(&path).expect("stream parses back");
        assert_eq!(events.len(), 5);

        let report = render_report(&dir).expect("report renders");
        assert!(report.contains("## Streams"));
        assert!(report.contains("selection timeline"));
        assert!(report.contains("| 2 |"), "epoch 2 row present");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampling_keeps_endpoints() {
        assert_eq!(sample_rows(5, 16), vec![0, 1, 2, 3, 4]);
        let rows = sample_rows(100, 16);
        assert_eq!(rows.first(), Some(&0));
        assert_eq!(rows.last(), Some(&99));
        assert!(rows.len() <= 16);
    }
}
