//! Table generators (system configuration, workloads, mixes, overhead).

use crate::{emit, run_lengths};
use nucache_cache::config::DEFAULT_BLOCK_BYTES;
use nucache_common::table::{f2, f3, Table};
use nucache_common::CoreId;
use nucache_core::overhead::{nucache_overhead, pipp_overhead, tadip_overhead, ucp_overhead};
use nucache_core::NuCacheConfig;
use nucache_sim::config::{BASELINE_LLC_BYTES_PER_CORE, BASELINE_LLC_WAYS};
use nucache_sim::runner::{default_jobs, parallel_map};
use nucache_sim::scheme::PARTITION_EPOCH;
use nucache_sim::{run_solo, SimConfig};
use nucache_trace::{Mix, SpecWorkload, TraceGen, TraceSummary};

/// Table 1: the simulated system configuration.
pub fn table1() {
    let config = SimConfig::baseline(4);
    let nu = NuCacheConfig::default();
    let mut t = Table::new(["parameter", "value"]);
    let mut row = |k: &str, v: String| {
        t.row([k.to_string(), v]);
    };
    row("cores", "1 / 2 / 4 / 8 (per experiment)".into());
    row("core model", "in-order, 1 IPC + memory stalls, per-class MLP overlap".into());
    row("L1 (private)", format!("{}", config.l1));
    row("L2 (private)", format!("{}", config.l2));
    row(
        "LLC (shared)",
        format!(
            "{} MiB per core, {}-way, {}B (scales with cores)",
            BASELINE_LLC_BYTES_PER_CORE >> 20,
            BASELINE_LLC_WAYS,
            DEFAULT_BLOCK_BYTES
        ),
    );
    row("latencies", format!("{}", config.timing));
    row(
        "NUcache MainWays/DeliWays",
        format!("{} / {}", BASELINE_LLC_WAYS - nu.deli_ways, nu.deli_ways),
    );
    row("NUcache epoch", format!("{} LLC accesses", nu.epoch_len));
    row("NUcache candidates", format!("{}", nu.max_candidates));
    row(
        "Next-Use monitor",
        format!("1 set in {}, {} entries/set", 1 << nu.monitor_shift, nu.monitor_depth),
    );
    row("UCP/PIPP epoch", format!("{PARTITION_EPOCH} LLC accesses, UMON-DSS 1 set in 32"));
    let (warm, meas) = run_lengths();
    row("run length / core", format!("{warm} warm-up + {meas} measured accesses"));
    emit("table1_config", "Simulated system configuration", &t);
}

/// Table 2: workload inventory with solo behaviour.
pub fn table2() {
    let (warm, meas) = run_lengths();
    let config = SimConfig::baseline(1).with_run_lengths(warm, meas);
    let mut t = Table::new([
        "workload",
        "class",
        "footprint_mb",
        "apki",
        "solo_ipc",
        "solo_llc_mpki",
        "pcs",
        "top4_pc_cov",
    ]);
    let rows = parallel_map(default_jobs(), &SpecWorkload::ALL, |&w| {
        let summary = TraceSummary::from_accesses(
            TraceGen::new(&w.spec(), CoreId::new(0), config.seed).take(200_000),
        );
        (summary, run_solo(&config, w))
    });
    for (w, (summary, solo)) in SpecWorkload::ALL.iter().zip(&rows) {
        t.row([
            w.name().to_string(),
            w.class().to_string(),
            f2(w.spec().footprint_lines() as f64 * 64.0 / (1024.0 * 1024.0)),
            f2(summary.apki()),
            f3(solo.ipc),
            f2(solo.llc_mpki),
            summary.distinct_pcs.to_string(),
            f2(summary.top_pc_coverage(4)),
        ]);
    }
    emit("table2_workloads", "Workload inventory (solo on 1 MiB LLC)", &t);
}

/// Table 3: the multiprogrammed mixes.
pub fn table3() {
    let mut t = Table::new(["mix", "cores", "workloads"]);
    for mix in Mix::dual_core_suite()
        .into_iter()
        .chain(Mix::quad_core_suite())
        .chain(Mix::eight_core_suite())
    {
        let members: Vec<&str> = mix.workloads().iter().map(|w| w.name()).collect();
        t.row([mix.name().to_string(), mix.num_cores().to_string(), members.join("+")]);
    }
    emit("table3_mixes", "Multiprogrammed mixes", &t);
}

/// Table 4: hardware storage overhead per scheme.
pub fn table4() {
    let mut t = Table::new([
        "cores",
        "scheme",
        "per_line_kb",
        "monitor_kb",
        "control_kb",
        "total_kb",
        "pct_of_llc",
    ]);
    for cores in [2usize, 4, 8] {
        let geom = SimConfig::baseline(cores).llc;
        let rows = [
            ("nucache", nucache_overhead(&geom, &NuCacheConfig::default())),
            ("ucp", ucp_overhead(&geom, cores, 5)),
            ("pipp", pipp_overhead(&geom, cores, 5)),
            ("tadip", tadip_overhead(&geom, cores)),
        ];
        for (name, o) in rows {
            t.row([
                cores.to_string(),
                name.to_string(),
                f2(o.per_line_bits as f64 / 8192.0),
                f2(o.monitor_bits as f64 / 8192.0),
                f2(o.control_bits as f64 / 8192.0),
                f2(o.total_kb()),
                format!("{:.2}%", o.fraction_of(&geom) * 100.0),
            ]);
        }
    }
    emit("table4_overhead", "Hardware storage overhead", &t);
}

#[cfg(test)]
mod tests {
    // The table functions run real simulations; they are exercised by the
    // run_all binary and the integration suite. Here we only check the
    // cheap ones execute.
    use super::*;

    #[test]
    fn static_tables_emit() {
        std::env::set_var("NUCACHE_OUT", std::env::temp_dir().join("nucache_tables_test"));
        table1();
        table3();
        table4();
        assert!(crate::out_dir().join("table3_mixes.csv").exists());
    }
}
