//! Parallel experiment runner: fans (mix, scheme) jobs out over worker
//! threads while keeping results in deterministic submission order.
//!
//! Every simulation job is a pure function of its inputs — `run_mix` and
//! `run_solo` share no mutable state — so running jobs concurrently
//! cannot change any individual result. The runner exploits that:
//!
//! * [`parallel_map`] is the scheduling primitive — scoped worker threads
//!   pull items off a shared atomic cursor and write results into
//!   per-slot cells, so the output `Vec` is always in input order no
//!   matter which worker finished when;
//! * [`Runner`] layers a thread-safe memoized solo-run cache on top, so
//!   normalization references are computed once per workload even when
//!   many jobs need them at the same time;
//! * worker count comes from `--jobs N` / `NUCACHE_JOBS`, defaulting to
//!   the machine's available parallelism.
//!
//! # Examples
//!
//! ```
//! use nucache_sim::runner::Runner;
//! use nucache_sim::{Scheme, SimConfig};
//! use nucache_trace::{Mix, SpecWorkload};
//!
//! let runner = Runner::new(SimConfig::demo()).with_jobs(2);
//! let mixes = [Mix::new("m", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike])];
//! let schemes = [Scheme::Lru, Scheme::nucache_default()];
//! let grid = runner.evaluate_grid(&mixes, &schemes);
//! assert_eq!(grid.len(), 1);
//! assert_eq!(grid[0].len(), 2);
//! assert!(grid[0][0].1.weighted_speedup > 0.0);
//! ```

use crate::config::SimConfig;
use crate::driver::{run_mix, run_mix_telemetry, run_solo, CoreResult, SimResult};
use crate::scheme::Scheme;
use crate::telemetry::{stream_path, TelemetrySpec};
use nucache_common::telemetry::JsonlSink;
use nucache_cpu::MultiProgramMetrics;
use nucache_trace::{Mix, SpecWorkload};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide worker-count override installed by `--jobs` flags
/// (0 = no override).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide worker-count override taking precedence over
/// `NUCACHE_JOBS`; passing 0 clears it.
pub fn set_default_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// Worker count for new runners: the [`set_default_jobs`] override when
/// installed, else `NUCACHE_JOBS` when set to a positive integer, else
/// the machine's available parallelism.
pub fn default_jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit >= 1 {
        return explicit;
    }
    std::env::var("NUCACHE_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Applies `f` to every item on up to `jobs` worker threads, returning
/// results in input order.
///
/// Items are claimed through a shared atomic cursor (cheap work
/// stealing: a worker stuck on a slow simulation doesn't hold up the
/// queue) and each result lands in its item's dedicated slot, so output
/// order never depends on scheduling. With `jobs <= 1` or a single item
/// the map runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates a panic from any worker once all workers have stopped.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("worker filled every slot")
        })
        .collect()
}

/// Thread-safe memoized solo-run cache.
///
/// Each workload maps to an [`OnceLock`] cell: the first thread to need a
/// solo result computes it, any thread arriving meanwhile blocks on the
/// cell instead of duplicating the (expensive) run.
#[derive(Debug, Default)]
struct SoloCache {
    cells: Mutex<BTreeMap<SpecWorkload, Arc<OnceLock<CoreResult>>>>,
}

impl SoloCache {
    fn get(&self, config: &SimConfig, workload: SpecWorkload) -> CoreResult {
        let cell = {
            let mut map = self.cells.lock().expect("solo cache poisoned");
            Arc::clone(map.entry(workload).or_default())
        };
        cell.get_or_init(|| run_solo(config, workload)).clone()
    }

    fn snapshot(&self) -> BTreeMap<SpecWorkload, CoreResult> {
        let map = self.cells.lock().expect("solo cache poisoned");
        map.iter().filter_map(|(&w, cell)| cell.get().map(|r| (w, r.clone()))).collect()
    }
}

/// Fans simulation jobs out over worker threads for one system
/// configuration, memoizing the solo runs that normalization needs.
///
/// Results are bit-identical at any worker count: jobs are pure, the
/// output order is fixed by submission order, and the solo cache only
/// changes *who* computes a result, never its value.
#[derive(Debug)]
pub struct Runner {
    config: SimConfig,
    jobs: usize,
    solo_cache: SoloCache,
    telemetry: Option<TelemetrySpec>,
    /// Next JSONL stream index — monotonic across `run_jobs` calls so a
    /// multi-batch experiment never reuses a file name.
    stream_index: AtomicUsize,
}

impl Runner {
    /// Creates a runner for `config` with [`default_jobs`] workers,
    /// picking up the process-wide telemetry directory
    /// ([`crate::telemetry::default_telemetry_dir`]) when one is active.
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        let telemetry = TelemetrySpec::from_default_dir();
        if telemetry.is_some() {
            crate::telemetry::note_manifest_config(&config);
        }
        Runner {
            config,
            jobs: default_jobs(),
            solo_cache: SoloCache::default(),
            telemetry,
            stream_index: AtomicUsize::new(0),
        }
    }

    /// Overrides the worker count (`0` is treated as `1`).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides telemetry recording: `Some(spec)` streams every mix job
    /// into per-job JSONL files under `spec.dir`, `None` disables it
    /// (regardless of the process-wide default).
    pub fn with_telemetry(mut self, telemetry: Option<TelemetrySpec>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The active telemetry spec, if recording is on.
    pub const fn telemetry(&self) -> Option<&TelemetrySpec> {
        self.telemetry.as_ref()
    }

    /// The worker count in use.
    pub const fn jobs(&self) -> usize {
        self.jobs
    }

    /// The system configuration in use.
    pub const fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Solo result for `workload`, computed on first use and cached.
    pub fn solo(&self, workload: SpecWorkload) -> CoreResult {
        self.solo_cache.get(&self.config, workload)
    }

    /// Solo IPC vector for a mix.
    pub fn solo_ipcs(&self, mix: &Mix) -> Vec<f64> {
        mix.workloads().iter().map(|&w| self.solo(w).ipc).collect()
    }

    /// Simulates every (mix, scheme) job, fanning out over the worker
    /// pool; results are in job order.
    ///
    /// With telemetry on, each job additionally streams its events into
    /// its own `NNN_mix__scheme.jsonl` file (no shared writer, so worker
    /// count never affects stream contents); the simulation results are
    /// identical either way.
    ///
    /// # Panics
    ///
    /// Panics if a telemetry stream cannot be created or written.
    pub fn run_jobs(&self, jobs: &[(Mix, Scheme)]) -> Vec<SimResult> {
        let Some(spec) = &self.telemetry else {
            return parallel_map(self.jobs, jobs, |(mix, scheme)| {
                run_mix(&self.config, mix, scheme)
            });
        };
        let base = self.stream_index.fetch_add(jobs.len(), Ordering::Relaxed);
        let indexed: Vec<(usize, &(Mix, Scheme))> =
            jobs.iter().enumerate().map(|(i, job)| (base + i, job)).collect();
        parallel_map(self.jobs, &indexed, |&(index, (mix, scheme))| {
            let path = stream_path(&spec.dir, index, mix.name(), &scheme.name());
            let mut sink = JsonlSink::create(&path)
                .unwrap_or_else(|e| panic!("creating telemetry stream {}: {e}", path.display()));
            let result =
                run_mix_telemetry(&self.config, mix, scheme, spec.snapshot_interval, &mut sink);
            sink.finish()
                .unwrap_or_else(|e| panic!("writing telemetry stream {}: {e}", path.display()));
            result
        })
    }

    /// Evaluates the full `mixes` × `schemes` grid in parallel and
    /// returns `grid[mix_index][scheme_index]` pairs of raw result and
    /// normalized metrics.
    ///
    /// Solo runs are primed first (in parallel, one per distinct
    /// workload) so the grid jobs never serialize on the solo cache.
    pub fn evaluate_grid(
        &self,
        mixes: &[Mix],
        schemes: &[Scheme],
    ) -> Vec<Vec<(SimResult, MultiProgramMetrics)>> {
        self.prime_solos(mixes);
        let jobs: Vec<(Mix, Scheme)> = mixes
            .iter()
            .flat_map(|m| schemes.iter().map(move |s| (m.clone(), s.clone())))
            .collect();
        let mut results = self.run_jobs(&jobs).into_iter();
        mixes
            .iter()
            .map(|mix| {
                let solo = self.solo_ipcs(mix);
                schemes
                    .iter()
                    .map(|_| {
                        let result = results.next().expect("one result per job");
                        let metrics = MultiProgramMetrics::new(&result.ipcs(), &solo);
                        (result, metrics)
                    })
                    .collect()
            })
            .collect()
    }

    /// Computes (and caches) the solo result of every distinct workload
    /// in `mixes`, in parallel.
    pub fn prime_solos(&self, mixes: &[Mix]) {
        let mut workloads: Vec<SpecWorkload> =
            mixes.iter().flat_map(|m| m.workloads().iter().copied()).collect();
        workloads.sort();
        workloads.dedup();
        parallel_map(self.jobs, &workloads, |&w| self.solo(w));
    }

    /// An [`Evaluator`](crate::Evaluator) pre-seeded with every solo
    /// result this runner has computed, for serial code paths that want
    /// the classic interface.
    pub fn primed_evaluator(&self) -> crate::Evaluator {
        let mut eval = crate::Evaluator::new(self.config);
        for (w, r) in self.solo_cache.snapshot() {
            eval.prime_solo(w, r);
        }
        eval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(8, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_serial_fallback() {
        let items = [1u64, 2, 3];
        assert_eq!(parallel_map(1, &items, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(0, &items, |&x| x + 1), vec![2, 3, 4]);
        let empty: [u64; 0] = [];
        assert!(parallel_map(4, &empty, |&x| x).is_empty());
    }

    #[test]
    fn solo_cache_computes_once() {
        let runner = Runner::new(SimConfig::demo()).with_jobs(4);
        // Hammer the same workload from many threads; OnceLock must hand
        // everyone the same result.
        let items = [SpecWorkload::HmmerLike; 16];
        let results = parallel_map(4, &items, |&w| runner.solo(w));
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(runner.solo_cache.snapshot().len(), 1);
    }

    #[test]
    fn grid_matches_serial_evaluator() {
        let config = SimConfig::demo();
        let mixes = [
            Mix::new("a", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]),
            Mix::new("b", vec![SpecWorkload::Bzip2Like, SpecWorkload::SjengLike]),
        ];
        let schemes = [Scheme::Lru, Scheme::nucache_default()];

        let runner = Runner::new(config).with_jobs(4);
        let grid = runner.evaluate_grid(&mixes, &schemes);

        let mut eval = crate::Evaluator::new(config);
        for (i, mix) in mixes.iter().enumerate() {
            for (j, scheme) in schemes.iter().enumerate() {
                let (result, metrics) = eval.evaluate(mix, scheme);
                assert_eq!(grid[i][j].0, result, "mix {i} scheme {j}");
                assert_eq!(
                    grid[i][j].1.weighted_speedup, metrics.weighted_speedup,
                    "mix {i} scheme {j}"
                );
            }
        }
    }

    #[test]
    fn primed_evaluator_reuses_solos() {
        let runner = Runner::new(SimConfig::demo());
        runner.solo(SpecWorkload::HmmerLike);
        let eval = runner.primed_evaluator();
        assert_eq!(eval.cached_solo_runs(), 1);
    }
}
