//! Parallel experiment runner: fans (mix, scheme) jobs out over worker
//! threads while keeping results in deterministic submission order.
//!
//! Every simulation job is a pure function of its inputs — `run_mix` and
//! `run_solo` share no mutable state — so running jobs concurrently
//! cannot change any individual result. The runner exploits that:
//!
//! * [`parallel_map`] is the scheduling primitive — scoped worker threads
//!   pull items off a shared atomic cursor and write results into
//!   per-slot cells, so the output `Vec` is always in input order no
//!   matter which worker finished when;
//! * [`try_parallel_map`] is its fault-tolerant core: each job runs
//!   under `catch_unwind`, so a panicking job is recorded as a per-item
//!   [`JobFailure`] (index, attempts, message) while the other workers
//!   keep draining the queue; a [`JobPolicy`] adds bounded per-job retry
//!   and a wall-clock watchdog that *flags* (never kills) stuck jobs;
//! * [`Runner`] layers a thread-safe memoized solo-run cache on top, so
//!   normalization references are computed once per workload even when
//!   many jobs need them at the same time, and reports job failures and
//!   degraded telemetry streams into the run-manifest registries
//!   ([`crate::telemetry::note_failure`]) instead of discarding a batch;
//! * worker count comes from `--jobs N` / `NUCACHE_JOBS`, defaulting to
//!   the machine's available parallelism.
//!
//! With a seeded fault plan active ([`nucache_common::fault`]), the
//! runner deterministically injects worker panics and telemetry I/O
//! errors so every one of those degradation paths is exercised; with no
//! plan, results are bit-identical to a runner without any of this
//! machinery.
//!
//! # Examples
//!
//! ```
//! use nucache_sim::runner::Runner;
//! use nucache_sim::{Scheme, SimConfig};
//! use nucache_trace::{Mix, SpecWorkload};
//!
//! let runner = Runner::new(SimConfig::demo()).with_jobs(2);
//! let mixes = [Mix::new("m", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike])];
//! let schemes = [Scheme::Lru, Scheme::nucache_default()];
//! let grid = runner.evaluate_grid(&mixes, &schemes);
//! assert_eq!(grid.len(), 1);
//! assert_eq!(grid[0].len(), 2);
//! assert!(grid[0][0].1.weighted_speedup > 0.0);
//! ```

use crate::config::SimConfig;
use crate::driver::{run_mix, run_mix_telemetry, run_solo, CoreResult, SimResult};
use crate::scheme::Scheme;
use crate::telemetry::{note_degradation, note_failure, stream_path, FailureRecord, TelemetrySpec};
use nucache_common::fault::{active_fault_plan, FaultPlan, FaultSite};
use nucache_common::telemetry::JsonlSink;
use nucache_cpu::MultiProgramMetrics;
use nucache_trace::{Mix, SpecWorkload};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock, PoisonError};

/// Process-wide worker-count override installed by `--jobs` flags
/// (0 = no override).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide worker-count override taking precedence over
/// `NUCACHE_JOBS`; passing 0 clears it.
pub fn set_default_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// Worker count for new runners: the [`set_default_jobs`] override when
/// installed, else `NUCACHE_JOBS` when set to a positive integer, else
/// the machine's available parallelism.
///
/// An unusable `NUCACHE_JOBS` value (unparsable, or zero) warns once on
/// stderr instead of silently serializing the batch — a typo like
/// `NUCACHE_JOBS=8x` should not quietly cost a machine's worth of
/// parallelism.
pub fn default_jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit >= 1 {
        return explicit;
    }
    if let Ok(raw) = std::env::var("NUCACHE_JOBS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => {
                static WARNED: Once = Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "[runner] ignoring invalid NUCACHE_JOBS='{raw}' (expected a positive \
                         integer); using available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Default watchdog threshold: far beyond any healthy job on this
/// workload set, so flags mean "investigate", not noise.
pub const DEFAULT_WATCHDOG_SECS: u64 = 120;

/// Fault-handling knobs for [`try_parallel_map`] and [`Runner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPolicy {
    /// Extra attempts after a job's first panic (0 = fail immediately).
    /// Retries target transient failures; a deterministic panic fails
    /// every attempt and is recorded with its final attempt count.
    pub max_retries: u32,
    /// Wall-clock seconds after which an in-flight job is flagged as
    /// stuck (warned and noted in the run manifest — never killed, since
    /// a slow simulation still produces a correct result). `None`
    /// disables the watchdog.
    pub watchdog_secs: Option<u64>,
}

impl Default for JobPolicy {
    fn default() -> Self {
        JobPolicy { max_retries: 1, watchdog_secs: Some(DEFAULT_WATCHDOG_SECS) }
    }
}

impl JobPolicy {
    /// The default policy with `NUCACHE_WATCHDOG_SECS` applied when set
    /// (`0` disables the watchdog; an unparsable value warns once and is
    /// ignored).
    pub fn from_env() -> Self {
        let mut policy = JobPolicy::default();
        if let Ok(raw) = std::env::var("NUCACHE_WATCHDOG_SECS") {
            match raw.trim().parse::<u64>() {
                Ok(0) => policy.watchdog_secs = None,
                Ok(secs) => policy.watchdog_secs = Some(secs),
                Err(_) => {
                    static WARNED: Once = Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "[runner] ignoring invalid NUCACHE_WATCHDOG_SECS='{raw}' \
                             (expected seconds, 0 to disable)"
                        );
                    });
                }
            }
        }
        policy
    }
}

/// A job that kept panicking through every attempt its policy allowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the failed item in the input slice.
    pub index: usize,
    /// Attempts made (1 + retries taken).
    pub attempts: u64,
    /// The panic message of the final attempt.
    pub message: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} failed after {} attempt(s): {}", self.index, self.attempts, self.message)
    }
}

/// A job the watchdog flagged as exceeding its wall-clock threshold.
/// Flagged jobs keep running and usually complete; the flag marks them
/// for investigation.
#[derive(Debug, Clone, PartialEq)]
pub struct StuckJob {
    /// Index of the flagged item in the input slice.
    pub index: usize,
    /// In-flight wall-clock seconds at the moment of flagging.
    pub seconds: f64,
}

/// Everything [`try_parallel_map`] observed: per-item outcomes in input
/// order, plus any watchdog flags.
#[derive(Debug)]
pub struct ParallelReport<R> {
    /// One entry per input item, in input order.
    pub results: Vec<Result<R, JobFailure>>,
    /// Jobs flagged as stuck (they may nevertheless have completed).
    pub stuck: Vec<StuckJob>,
}

impl<R> ParallelReport<R> {
    /// The failures, in input order.
    pub fn failures(&self) -> impl Iterator<Item = &JobFailure> {
        self.results.iter().filter_map(|r| r.as_ref().err())
    }
}

/// Renders a `catch_unwind` payload as a message string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".to_string())
}

/// Runs one item under `catch_unwind`, retrying per `policy`.
fn run_attempts<T, R>(
    policy: &JobPolicy,
    index: usize,
    item: &T,
    f: &(impl Fn(&T) -> R + Sync),
) -> Result<R, JobFailure> {
    let attempts = u64::from(policy.max_retries) + 1;
    let mut message = String::new();
    for attempt in 1..=attempts {
        match catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(result) => return Ok(result),
            Err(payload) => {
                message = panic_message(payload.as_ref());
                if attempt < attempts {
                    eprintln!(
                        "[runner] job {index} panicked (attempt {attempt} of {attempts}): \
                         {message}; retrying"
                    );
                }
            }
        }
    }
    Err(JobFailure { index, attempts, message })
}

/// Applies `f` to every item on up to `jobs` worker threads with full
/// panic isolation, returning one `Result` per item in input order.
///
/// Items are claimed through a shared atomic cursor (cheap work
/// stealing: a worker stuck on a slow job doesn't hold up the queue).
/// Each job runs under `catch_unwind`: a panic is caught, retried up to
/// `policy.max_retries` times, and finally recorded as a [`JobFailure`]
/// carrying the item index and panic message — the remaining items are
/// unaffected and always run to completion. With `policy.watchdog_secs`
/// set, a monitor thread flags (warns about, but never kills) jobs
/// whose wall-clock time exceeds the threshold; the flags are reported
/// in [`ParallelReport::stuck`]. Wall time is observed only for
/// flagging — it cannot influence any result.
///
/// With `jobs <= 1` or a single item the map runs inline on the
/// caller's thread (panic isolation and retry still apply; the watchdog
/// does not, as there is no second thread to observe from).
pub fn try_parallel_map<T, R, F>(
    jobs: usize,
    items: &[T],
    policy: &JobPolicy,
    f: F,
) -> ParallelReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        let results =
            items.iter().enumerate().map(|(i, item)| run_attempts(policy, i, item, &f)).collect();
        return ParallelReport { results, stuck: Vec::new() };
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, JobFailure>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    // Per-slot start times observed by the watchdog. Wall time is used
    // for flagging only and never reaches a simulation.
    // nucache-audit: allow(wall-clock-in-sim) -- watchdog flagging only, results unaffected
    let started: Vec<Mutex<Option<std::time::Instant>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    let flagged: Vec<AtomicBool> = items.iter().map(|_| AtomicBool::new(false)).collect();
    let stuck: Mutex<Vec<StuckJob>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                // nucache-audit: allow(wall-clock-in-sim) -- watchdog flagging only
                let now = std::time::Instant::now();
                *started[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(now);
                let result = run_attempts(policy, i, item, &f);
                *started[i].lock().unwrap_or_else(PoisonError::into_inner) = None;
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                completed.fetch_add(1, Ordering::Release);
            });
        }
        if let Some(limit) = policy.watchdog_secs {
            let poll = std::time::Duration::from_millis(if limit == 0 {
                5
            } else {
                (limit * 250).min(500)
            });
            let (started, flagged, stuck, completed) = (&started, &flagged, &stuck, &completed);
            scope.spawn(move || {
                while completed.load(Ordering::Acquire) < items.len() {
                    std::thread::sleep(poll);
                    for (i, slot) in started.iter().enumerate() {
                        let Some(t0) = *slot.lock().unwrap_or_else(PoisonError::into_inner) else {
                            continue;
                        };
                        let elapsed = t0.elapsed();
                        if elapsed.as_secs() >= limit && !flagged[i].swap(true, Ordering::Relaxed) {
                            let seconds = elapsed.as_secs_f64();
                            eprintln!(
                                "[runner] watchdog: job {i} still running after {seconds:.1}s \
                                 (flagged, not killed)"
                            );
                            stuck
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push(StuckJob { index: i, seconds });
                        }
                    }
                }
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // Workers run every claimed job under catch_unwind and
                // always store an outcome, so an empty slot is a
                // scheduler bug, not a job failure.
                // nucache-audit: allow(unwrap-in-lib) -- invariant: every slot is filled
                .expect("worker filled every slot")
        })
        .collect();
    let mut stuck = stuck.into_inner().unwrap_or_else(PoisonError::into_inner);
    stuck.sort_by_key(|s| s.index);
    ParallelReport { results, stuck }
}

/// Applies `f` to every item on up to `jobs` worker threads, returning
/// results in input order.
///
/// This is the infallible façade over [`try_parallel_map`] with no
/// retries and no watchdog: scheduling is identical, output order never
/// depends on it, and with `jobs <= 1` or a single item the map runs
/// inline on the caller's thread.
///
/// # Panics
///
/// If any job panics, every other job still runs to completion and then
/// this function panics with the first failing job's index and message.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let policy = JobPolicy { max_retries: 0, watchdog_secs: None };
    let report = try_parallel_map(jobs, items, &policy, f);
    report
        .results
        .into_iter()
        .map(|result| match result {
            Ok(value) => value,
            Err(failure) => panic!("{failure}"),
        })
        .collect()
}

/// Thread-safe memoized solo-run cache.
///
/// Each workload maps to an [`OnceLock`] cell: the first thread to need a
/// solo result computes it, any thread arriving meanwhile blocks on the
/// cell instead of duplicating the (expensive) run.
#[derive(Debug, Default)]
struct SoloCache {
    cells: Mutex<BTreeMap<SpecWorkload, Arc<OnceLock<CoreResult>>>>,
}

impl SoloCache {
    /// The cell map, recovering from poisoning: the map holds only plain
    /// data (workload keys and completed results), which stays valid
    /// even if a worker panicked mid-insert was impossible — entries are
    /// inserted atomically — so one panicked job must not wedge every
    /// later solo lookup.
    fn cells(
        &self,
    ) -> std::sync::MutexGuard<'_, BTreeMap<SpecWorkload, Arc<OnceLock<CoreResult>>>> {
        self.cells.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn get(&self, config: &SimConfig, workload: SpecWorkload) -> CoreResult {
        let cell = {
            let mut map = self.cells();
            Arc::clone(map.entry(workload).or_default())
        };
        cell.get_or_init(|| run_solo(config, workload)).clone()
    }

    fn snapshot(&self) -> BTreeMap<SpecWorkload, CoreResult> {
        let map = self.cells();
        map.iter().filter_map(|(&w, cell)| cell.get().map(|r| (w, r.clone()))).collect()
    }
}

/// Fans simulation jobs out over worker threads for one system
/// configuration, memoizing the solo runs that normalization needs.
///
/// Results are bit-identical at any worker count: jobs are pure, the
/// output order is fixed by submission order, and the solo cache only
/// changes *who* computes a result, never its value. Failure handling
/// follows the same rule — a panicking job is isolated, retried per the
/// [`JobPolicy`], recorded in the failure registry and (through
/// [`Runner::try_run_jobs`]) surfaced as a per-job `Result`, while the
/// rest of the batch completes normally.
#[derive(Debug)]
pub struct Runner {
    config: SimConfig,
    jobs: usize,
    policy: JobPolicy,
    fault_plan: Option<FaultPlan>,
    solo_cache: SoloCache,
    telemetry: Option<TelemetrySpec>,
    /// Next job index — monotonic across `run_jobs` calls so a
    /// multi-batch experiment never reuses a JSONL stream name and
    /// fault-injection decisions differ between batches.
    stream_index: AtomicUsize,
}

impl Runner {
    /// Creates a runner for `config` with [`default_jobs`] workers,
    /// picking up the process-wide telemetry directory
    /// ([`crate::telemetry::default_telemetry_dir`]) and fault plan
    /// ([`nucache_common::fault::active_fault_plan`]) when active.
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        let telemetry = TelemetrySpec::from_default_dir();
        if telemetry.is_some() {
            crate::telemetry::note_manifest_config(&config);
        }
        Runner {
            config,
            jobs: default_jobs(),
            policy: JobPolicy::from_env(),
            fault_plan: active_fault_plan(),
            solo_cache: SoloCache::default(),
            telemetry,
            stream_index: AtomicUsize::new(0),
        }
    }

    /// Overrides the worker count (`0` is treated as `1`).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides the retry/watchdog policy.
    pub fn with_policy(mut self, policy: JobPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides fault injection: `Some(plan)` injects that plan's
    /// faults into this runner's jobs, `None` disables injection
    /// (regardless of the process-wide plan).
    pub fn with_fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Overrides telemetry recording: `Some(spec)` streams every mix job
    /// into per-job JSONL files under `spec.dir`, `None` disables it
    /// (regardless of the process-wide default).
    pub fn with_telemetry(mut self, telemetry: Option<TelemetrySpec>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The active telemetry spec, if recording is on.
    pub const fn telemetry(&self) -> Option<&TelemetrySpec> {
        self.telemetry.as_ref()
    }

    /// The worker count in use.
    pub const fn jobs(&self) -> usize {
        self.jobs
    }

    /// The retry/watchdog policy in use.
    pub const fn policy(&self) -> &JobPolicy {
        &self.policy
    }

    /// The system configuration in use.
    pub const fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Solo result for `workload`, computed on first use and cached.
    pub fn solo(&self, workload: SpecWorkload) -> CoreResult {
        self.solo_cache.get(&self.config, workload)
    }

    /// Solo IPC vector for a mix.
    pub fn solo_ipcs(&self, mix: &Mix) -> Vec<f64> {
        mix.workloads().iter().map(|&w| self.solo(w).ipc).collect()
    }

    /// Runs one job, with telemetry when configured. A telemetry stream
    /// that cannot be created degrades to no telemetry for that job; a
    /// stream that cannot be written is dropped and its partial file
    /// removed. Both degrade with a single stderr warning plus a
    /// manifest note, and never change the simulation result.
    fn run_one(&self, index: usize, mix: &Mix, scheme: &Scheme) -> SimResult {
        let Some(spec) = &self.telemetry else {
            return run_mix(&self.config, mix, scheme);
        };
        let path = stream_path(&spec.dir, index, mix.name(), &scheme.name());
        let created = match &self.fault_plan {
            Some(plan) if plan.should_fault(FaultSite::TelemetryCreate, index as u64) => {
                Err(std::io::Error::other(plan.message(FaultSite::TelemetryCreate, index as u64)))
            }
            _ => JsonlSink::create(&path),
        };
        match created {
            Ok(mut sink) => {
                if let Some(plan) = &self.fault_plan {
                    if plan.should_fault(FaultSite::TelemetryWrite, index as u64) {
                        sink.inject_error(std::io::Error::other(
                            plan.message(FaultSite::TelemetryWrite, index as u64),
                        ));
                    }
                }
                let result =
                    run_mix_telemetry(&self.config, mix, scheme, spec.snapshot_interval, &mut sink);
                if let Err(e) = sink.finish() {
                    note_degradation(format!(
                        "telemetry stream {} incomplete ({e}); partial file removed, job result kept",
                        path.display()
                    ));
                    let _ = std::fs::remove_file(&path);
                }
                result
            }
            Err(e) => {
                note_degradation(format!(
                    "creating telemetry stream {} failed ({e}); job ran without telemetry",
                    path.display()
                ));
                run_mix(&self.config, mix, scheme)
            }
        }
    }

    /// Simulates every (mix, scheme) job with panic isolation, returning
    /// one `Result` per job in submission order.
    ///
    /// A job that panics (after the policy's retries) yields an `Err`
    /// with its index and panic message; every other job completes and
    /// yields its result — one poisoned mix cannot discard a batch. Each
    /// failure is also recorded in the process-wide registry
    /// ([`crate::telemetry::note_failure`]) so run manifests list it,
    /// and watchdog-flagged jobs are noted as degradations.
    ///
    /// With telemetry on, each job additionally streams its events into
    /// its own `NNN_mix__scheme.jsonl` file (no shared writer, so worker
    /// count never affects stream contents); the simulation results are
    /// identical either way. With a fault plan active, worker panics and
    /// telemetry I/O errors are injected per the plan's schedule.
    pub fn try_run_jobs(&self, jobs: &[(Mix, Scheme)]) -> Vec<Result<SimResult, JobFailure>> {
        let base = self.stream_index.fetch_add(jobs.len(), Ordering::Relaxed);
        let indexed: Vec<(usize, &(Mix, Scheme))> =
            jobs.iter().enumerate().map(|(i, job)| (base + i, job)).collect();
        let report =
            try_parallel_map(self.jobs, &indexed, &self.policy, |&(index, (mix, scheme))| {
                if let Some(plan) = &self.fault_plan {
                    if plan.should_fault(FaultSite::WorkerPanic, index as u64) {
                        panic!("{}", plan.message(FaultSite::WorkerPanic, index as u64));
                    }
                }
                self.run_one(index, mix, scheme)
            });
        for s in &report.stuck {
            let (mix, scheme) = &jobs[s.index];
            note_degradation(format!(
                "watchdog flagged job {} ({}/{}) as stuck after {:.1}s",
                base + s.index,
                mix.name(),
                scheme.name(),
                s.seconds
            ));
        }
        report
            .results
            .into_iter()
            .enumerate()
            .map(|(i, result)| {
                result.map_err(|failure| {
                    let (mix, scheme) = &jobs[i];
                    note_failure(FailureRecord {
                        stage: "job".to_string(),
                        job: Some(format!("{}/{}", mix.name(), scheme.name())),
                        index: Some((base + i) as u64),
                        attempts: failure.attempts,
                        message: failure.message.clone(),
                    });
                    JobFailure { index: i, ..failure }
                })
            })
            .collect()
    }

    /// Simulates every (mix, scheme) job, fanning out over the worker
    /// pool; results are in job order.
    ///
    /// This is the infallible façade over [`Runner::try_run_jobs`] for
    /// callers that need every result (a figure cannot be assembled from
    /// a grid with holes).
    ///
    /// # Panics
    ///
    /// Panics if any job ultimately fails. Every other job still runs to
    /// completion first and all failures are recorded in the manifest
    /// registry, so an outer `catch_unwind` (as in `run_all`) loses only
    /// the aborted step, not the batch's diagnostics.
    pub fn run_jobs(&self, jobs: &[(Mix, Scheme)]) -> Vec<SimResult> {
        let results = self.try_run_jobs(jobs);
        let failed = results.iter().filter(|r| r.is_err()).count();
        let total = jobs.len();
        results
            .into_iter()
            .map(|result| match result {
                Ok(value) => value,
                Err(failure) => panic!("{failed} of {total} job(s) failed; first: {failure}"),
            })
            .collect()
    }

    /// Evaluates the full `mixes` × `schemes` grid in parallel and
    /// returns `grid[mix_index][scheme_index]` pairs of raw result and
    /// normalized metrics.
    ///
    /// Solo runs are primed first (in parallel, one per distinct
    /// workload) so the grid jobs never serialize on the solo cache.
    pub fn evaluate_grid(
        &self,
        mixes: &[Mix],
        schemes: &[Scheme],
    ) -> Vec<Vec<(SimResult, MultiProgramMetrics)>> {
        self.prime_solos(mixes);
        let jobs: Vec<(Mix, Scheme)> = mixes
            .iter()
            .flat_map(|m| schemes.iter().map(move |s| (m.clone(), s.clone())))
            .collect();
        let mut results = self.run_jobs(&jobs).into_iter();
        mixes
            .iter()
            .map(|mix| {
                let solo = self.solo_ipcs(mix);
                schemes
                    .iter()
                    .map(|_| {
                        let result = results.next().expect("one result per job");
                        let metrics = MultiProgramMetrics::new(&result.ipcs(), &solo);
                        (result, metrics)
                    })
                    .collect()
            })
            .collect()
    }

    /// Computes (and caches) the solo result of every distinct workload
    /// in `mixes`, in parallel.
    pub fn prime_solos(&self, mixes: &[Mix]) {
        let mut workloads: Vec<SpecWorkload> =
            mixes.iter().flat_map(|m| m.workloads().iter().copied()).collect();
        workloads.sort();
        workloads.dedup();
        parallel_map(self.jobs, &workloads, |&w| self.solo(w));
    }

    /// An [`Evaluator`](crate::Evaluator) pre-seeded with every solo
    /// result this runner has computed, for serial code paths that want
    /// the classic interface.
    pub fn primed_evaluator(&self) -> crate::Evaluator {
        let mut eval = crate::Evaluator::new(self.config);
        for (w, r) in self.solo_cache.snapshot() {
            eval.prime_solo(w, r);
        }
        eval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(8, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_serial_fallback() {
        let items = [1u64, 2, 3];
        assert_eq!(parallel_map(1, &items, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(0, &items, |&x| x + 1), vec![2, 3, 4]);
        let empty: [u64; 0] = [];
        assert!(parallel_map(4, &empty, |&x| x).is_empty());
    }

    #[test]
    fn try_parallel_map_isolates_panics() {
        let items: Vec<u64> = (0..40).collect();
        let policy = JobPolicy { max_retries: 0, watchdog_secs: None };
        let report = try_parallel_map(4, &items, &policy, |&x| {
            assert!(!x.is_multiple_of(7), "injected test panic on {x}");
            x * 3
        });
        assert!(report.stuck.is_empty());
        for (i, result) in report.results.iter().enumerate() {
            if (i as u64).is_multiple_of(7) {
                let failure = result.as_ref().expect_err("multiples of 7 panic");
                assert_eq!(failure.index, i);
                assert_eq!(failure.attempts, 1);
                assert!(failure.message.contains("injected test panic"), "{}", failure.message);
            } else {
                assert_eq!(result.as_ref().ok(), Some(&(i as u64 * 3)));
            }
        }
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items = [0u64];
        let policy = JobPolicy { max_retries: 2, watchdog_secs: None };
        let report = try_parallel_map(1, &items, &policy, |_| -> u64 {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("always fails");
        });
        let failure = report.results[0].as_ref().expect_err("job always panics");
        assert_eq!(failure.attempts, 3, "1 initial + 2 retries");
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_recovers_transient_panics() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items = [7u64];
        let policy = JobPolicy { max_retries: 1, watchdog_secs: None };
        let report = try_parallel_map(1, &items, &policy, |&x| {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            x
        });
        assert_eq!(report.results[0].as_ref().ok(), Some(&7));
    }

    #[test]
    fn watchdog_flags_but_does_not_kill() {
        let items: Vec<u64> = vec![0, 1, 2, 3];
        let policy = JobPolicy { max_retries: 0, watchdog_secs: Some(0) };
        let report = try_parallel_map(4, &items, &policy, |&x| {
            if x == 2 {
                // A deliberately slow (test-only) job the zero-second
                // watchdog must flag while letting it finish.
                std::thread::sleep(std::time::Duration::from_millis(120));
            }
            x + 1
        });
        assert!(report.results.iter().all(Result::is_ok), "no job was killed");
        assert!(
            report.stuck.iter().any(|s| s.index == 2),
            "slow job flagged; stuck = {:?}",
            report.stuck
        );
    }

    #[test]
    fn parallel_map_panics_with_job_context() {
        let items: Vec<u64> = (0..8).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(4, &items, |&x| {
                assert!(x != 5, "boom on five");
                x
            })
        });
        let payload = caught.expect_err("must propagate");
        let message = panic_message(payload.as_ref());
        assert!(message.contains("job 5"), "message names the job: {message}");
        assert!(message.contains("boom on five"), "message keeps the cause: {message}");
    }

    #[test]
    fn solo_cache_computes_once() {
        let runner = Runner::new(SimConfig::demo()).with_jobs(4);
        // Hammer the same workload from many threads; OnceLock must hand
        // everyone the same result.
        let items = [SpecWorkload::HmmerLike; 16];
        let results = parallel_map(4, &items, |&w| runner.solo(w));
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(runner.solo_cache.snapshot().len(), 1);
    }

    #[test]
    fn solo_cache_survives_poisoning() {
        let runner = Runner::new(SimConfig::demo());
        // Poison the cells mutex by panicking while holding it.
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = runner.solo_cache.cells.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("poison the lock");
        }));
        assert!(runner.solo_cache.cells.is_poisoned(), "lock is poisoned");
        // Lookups must still work: the cached values are plain data.
        let solo = runner.solo(SpecWorkload::HmmerLike);
        assert!(solo.ipc > 0.0);
        assert_eq!(runner.solo_cache.snapshot().len(), 1);
    }

    #[test]
    fn poisoned_cache_yields_the_same_results_as_a_fresh_runner() {
        let config = SimConfig::demo();
        let runner = Runner::new(config);
        // A job panics while holding the memoization lock; the
        // PoisonError::into_inner recovery path must not change what
        // later lookups return.
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = runner.solo_cache.cells();
            panic!("job died holding the cells lock");
        }));
        assert!(runner.solo_cache.cells.is_poisoned(), "lock is poisoned");
        let fresh = Runner::new(config);
        for w in [SpecWorkload::HmmerLike, SpecWorkload::GobmkLike] {
            assert_eq!(runner.solo(w), fresh.solo(w), "poison recovery changed {w:?}");
        }
        assert_eq!(runner.solo_cache.snapshot(), fresh.solo_cache.snapshot());
    }

    #[test]
    fn grid_matches_serial_evaluator() {
        let config = SimConfig::demo();
        let mixes = [
            Mix::new("a", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]),
            Mix::new("b", vec![SpecWorkload::Bzip2Like, SpecWorkload::SjengLike]),
        ];
        let schemes = [Scheme::Lru, Scheme::nucache_default()];

        let runner = Runner::new(config).with_jobs(4);
        let grid = runner.evaluate_grid(&mixes, &schemes);

        let mut eval = crate::Evaluator::new(config);
        for (i, mix) in mixes.iter().enumerate() {
            for (j, scheme) in schemes.iter().enumerate() {
                let (result, metrics) = eval.evaluate(mix, scheme);
                assert_eq!(grid[i][j].0, result, "mix {i} scheme {j}");
                assert_eq!(
                    grid[i][j].1.weighted_speedup, metrics.weighted_speedup,
                    "mix {i} scheme {j}"
                );
            }
        }
    }

    #[test]
    fn primed_evaluator_reuses_solos() {
        let runner = Runner::new(SimConfig::demo());
        runner.solo(SpecWorkload::HmmerLike);
        let eval = runner.primed_evaluator();
        assert_eq!(eval.cached_solo_runs(), 1);
    }
}
