//! End-to-end multicore cache-hierarchy simulation for the NUcache
//! reproduction.
//!
//! Ties everything together: per-core synthetic traces (`nucache-trace`)
//! run through private L1/L2 stacks (`nucache-cache`) into a pluggable
//! shared LLC (baselines from `nucache-cache`/`nucache-partition`,
//! NUcache from `nucache-core`), with cycle accounting and
//! multiprogrammed metrics from `nucache-cpu`.
//!
//! The central types:
//!
//! * [`SimConfig`] — the full system description (Table 1);
//! * [`Scheme`] — which shared-LLC organization to instantiate;
//! * [`run_mix`] — simulate one multiprogrammed mix under one scheme;
//! * [`Evaluator`] — caches solo runs and computes normalized metrics;
//! * [`telemetry`] — JSONL event streams and run manifests.
//!
//! # Execution model: memoization and parallelism
//!
//! Experiment figures re-run the same simulations many times over — the
//! same solo baselines normalize every scheme, and sweeps share their
//! base points. Two layers keep that cheap without giving up determinism:
//!
//! * **Memoization.** [`Evaluator`] computes each workload's solo
//!   (single-core, shared-LRU) run at most once per configuration and
//!   reuses it for every normalized metric. Because all runs are
//!   deterministic functions of `(config, mix, scheme)`, a memoized
//!   result is indistinguishable from a fresh one.
//! * **Parallelism.** [`Runner`] fans independent (mix, scheme) jobs out
//!   across worker threads via [`parallel_map`], which preserves input
//!   order in its output vector: results land in the same slots at any
//!   `--jobs` value (or under [`set_default_jobs`] /`NUCACHE_JOBS`), so
//!   emitted tables are bit-identical whether run serially or on every
//!   core. Simulations share no mutable state — each job builds its own
//!   LLC, trace generators and clocks.
//!
//! Telemetry keeps the same properties: each job writes its own JSONL
//! stream (no shared writer), events carry no wall-clock timestamps, and
//! the driver emits them at deterministic points (issued-access interval
//! boundaries), so streams are reproducible byte-for-byte.
//!
//! # Examples
//!
//! ```
//! use nucache_sim::{Scheme, SimConfig};
//! use nucache_trace::{Mix, SpecWorkload};
//!
//! let config = SimConfig::demo(); // small sizes for doctests
//! let mix = Mix::new("demo", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]);
//! let result = nucache_sim::run_mix(&config, &mix, &Scheme::Lru);
//! assert_eq!(result.per_core.len(), 2);
//! assert!(result.per_core[0].ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod config;
pub mod driver;
pub mod evaluator;
pub mod runner;
pub mod scheme;
pub mod telemetry;

pub use config::SimConfig;
pub use driver::{
    run_mix, run_mix_audited, run_mix_nucache, run_mix_on, run_mix_on_sink, run_mix_telemetry,
    run_solo, take_simulated_accesses, CoreResult, SimResult,
};
pub use evaluator::Evaluator;
pub use nucache_cache::AuditStats;
pub use runner::{default_jobs, parallel_map, set_default_jobs, Runner};
pub use scheme::Scheme;
pub use telemetry::{
    default_telemetry_dir, set_default_telemetry_dir, write_manifest, Manifest, TelemetrySpec,
};
