//! End-to-end multicore cache-hierarchy simulation for the NUcache
//! reproduction.
//!
//! Ties everything together: per-core synthetic traces (`nucache-trace`)
//! run through private L1/L2 stacks (`nucache-cache`) into a pluggable
//! shared LLC (baselines from `nucache-cache`/`nucache-partition`,
//! NUcache from `nucache-core`), with cycle accounting and
//! multiprogrammed metrics from `nucache-cpu`.
//!
//! The central types:
//!
//! * [`SimConfig`] — the full system description (Table 1);
//! * [`Scheme`] — which shared-LLC organization to instantiate;
//! * [`run_mix`] — simulate one multiprogrammed mix under one scheme;
//! * [`Evaluator`] — caches solo runs and computes normalized metrics.
//!
//! # Examples
//!
//! ```
//! use nucache_sim::{Scheme, SimConfig};
//! use nucache_trace::{Mix, SpecWorkload};
//!
//! let config = SimConfig::demo(); // small sizes for doctests
//! let mix = Mix::new("demo", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]);
//! let result = nucache_sim::run_mix(&config, &mix, &Scheme::Lru);
//! assert_eq!(result.per_core.len(), 2);
//! assert!(result.per_core[0].ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod config;
pub mod driver;
pub mod evaluator;
pub mod runner;
pub mod scheme;

pub use config::SimConfig;
pub use driver::{
    run_mix, run_mix_nucache, run_mix_on, run_solo, take_simulated_accesses, CoreResult, SimResult,
};
pub use evaluator::Evaluator;
pub use runner::{default_jobs, parallel_map, set_default_jobs, Runner};
pub use scheme::Scheme;
