//! End-to-end multicore cache-hierarchy simulation for the NUcache
//! reproduction.
//!
//! Ties everything together: per-core synthetic traces (`nucache-trace`)
//! run through private L1/L2 stacks (`nucache-cache`) into a pluggable
//! shared LLC (baselines from `nucache-cache`/`nucache-partition`,
//! NUcache from `nucache-core`), with cycle accounting and
//! multiprogrammed metrics from `nucache-cpu`.
//!
//! The central types:
//!
//! * [`SimConfig`] — the full system description (Table 1);
//! * [`Scheme`] — which shared-LLC organization to instantiate;
//! * [`run_mix`] — simulate one multiprogrammed mix under one scheme;
//! * [`Evaluator`] — caches solo runs and computes normalized metrics;
//! * [`telemetry`] — JSONL event streams and run manifests.
//!
//! # Execution model: memoization and parallelism
//!
//! Experiment figures re-run the same simulations many times over — the
//! same solo baselines normalize every scheme, and sweeps share their
//! base points. Two layers keep that cheap without giving up determinism:
//!
//! * **Memoization.** [`Evaluator`] computes each workload's solo
//!   (single-core, shared-LRU) run at most once per configuration and
//!   reuses it for every normalized metric. Because all runs are
//!   deterministic functions of `(config, mix, scheme)`, a memoized
//!   result is indistinguishable from a fresh one.
//! * **Parallelism.** [`Runner`] fans independent (mix, scheme) jobs out
//!   across worker threads via [`parallel_map`], which preserves input
//!   order in its output vector: results land in the same slots at any
//!   `--jobs` value (or under [`set_default_jobs`] /`NUCACHE_JOBS`), so
//!   emitted tables are bit-identical whether run serially or on every
//!   core. Simulations share no mutable state — each job builds its own
//!   LLC, trace generators and clocks.
//!
//! Telemetry keeps the same properties: each job writes its own JSONL
//! stream (no shared writer), events carry no wall-clock timestamps, and
//! the driver emits them at deterministic points (issued-access interval
//! boundaries), so streams are reproducible byte-for-byte.
//!
//! # Fault tolerance
//!
//! The runner is built to lose as little as possible when something goes
//! wrong mid-batch (see DESIGN.md §11):
//!
//! * every job runs under `catch_unwind` — [`try_parallel_map`] /
//!   [`Runner::try_run_jobs`] return a per-item `Result`, so one
//!   panicking job is recorded as a [`JobFailure`] while the rest of the
//!   batch completes;
//! * a [`JobPolicy`] adds bounded per-job retry and a wall-clock
//!   watchdog that flags (never kills) stuck jobs;
//! * telemetry I/O errors degrade (dropped stream, single stderr
//!   warning, manifest note) rather than abort — simulation results are
//!   never affected;
//! * a seeded fault plan ([`nucache_common::fault`], installed via
//!   `--inject-faults` / `NUCACHE_FAULTS`) deterministically injects
//!   worker panics and telemetry/trace I/O errors to exercise all of the
//!   above; with no plan active these paths are pure observation and
//!   outputs are bit-identical to a fault-oblivious runner.
//!
//! Failures and degradations land in the run manifest's `failures` /
//! `notes` sections via [`telemetry::note_failure`] and
//! [`telemetry::note_degradation`].
//!
//! # Examples
//!
//! ```
//! use nucache_sim::{Scheme, SimConfig};
//! use nucache_trace::{Mix, SpecWorkload};
//!
//! let config = SimConfig::demo(); // small sizes for doctests
//! let mix = Mix::new("demo", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]);
//! let result = nucache_sim::run_mix(&config, &mix, &Scheme::Lru);
//! assert_eq!(result.per_core.len(), 2);
//! assert!(result.per_core[0].ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod config;
pub mod driver;
pub mod evaluator;
pub mod runner;
pub mod scheme;
pub mod telemetry;

pub use config::SimConfig;
pub use driver::{
    run_mix, run_mix_audited, run_mix_nucache, run_mix_on, run_mix_on_sink, run_mix_telemetry,
    run_solo, take_simulated_accesses, CoreResult, SimResult,
};
pub use evaluator::Evaluator;
pub use nucache_cache::AuditStats;
pub use nucache_common::fault::{active_fault_plan, set_fault_plan, FaultPlan, FaultSite};
pub use runner::{
    default_jobs, parallel_map, set_default_jobs, try_parallel_map, JobFailure, JobPolicy,
    ParallelReport, Runner, StuckJob,
};
pub use scheme::Scheme;
pub use telemetry::{
    default_telemetry_dir, note_degradation, note_failure, set_default_telemetry_dir,
    take_degradations, take_failures, write_manifest, FailureRecord, Manifest, TelemetrySpec,
};
