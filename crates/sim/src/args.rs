//! A small dependency-free command-line argument parser for the
//! `simulate` binary.
//!
//! Supports `--key value` and `--key=value` pairs plus `--flag` booleans;
//! unknown keys are errors so typos do not silently fall back to
//! defaults.

use std::collections::BTreeMap;
use std::fmt;

/// Error produced when parsing command-line arguments fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseArgsError {}

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Key order matters to [`Args::reject_unknown`]'s error message, so
    /// the map is a `BTreeMap`: the first unknown key reported is always
    /// the alphabetically first, not whichever a hasher happens to yield.
    values: BTreeMap<String, String>,
    flags: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parses an iterator of raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error for positional arguments or a trailing key with
    /// no value.
    pub fn parse<I, S>(raw: I) -> Result<Args, ParseArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ParseArgsError(format!("unexpected positional argument '{arg}'")));
            };
            if let Some((k, v)) = key.split_once('=') {
                values.insert(k.to_string(), v.to_string());
            } else if iter.peek().is_some_and(|n| !n.starts_with("--")) {
                let v = iter.next().expect("peeked");
                values.insert(key.to_string(), v);
            } else {
                flags.push(key.to_string());
            }
        }
        Ok(Args { values, flags, consumed: std::cell::RefCell::new(Vec::new()) })
    }

    /// String value for `key`, or `default`.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.consumed.borrow_mut().push(key.to_string());
        self.values.get(key).map_or(default, String::as_str)
    }

    /// Parsed numeric value for `key`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is present but unparsable.
    pub fn get_num<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        self.consumed.borrow_mut().push(key.to_string());
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ParseArgsError(format!("--{key}: cannot parse '{v}'")))
            }
        }
    }

    /// Whether a bare `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.consumed.borrow_mut().push(key.to_string());
        self.flags.iter().any(|f| f == key)
    }

    /// After reading every expected key, rejects leftovers (typo guard).
    ///
    /// # Errors
    ///
    /// Returns an error naming the first unrecognized key.
    pub fn reject_unknown(&self) -> Result<(), ParseArgsError> {
        let consumed = self.consumed.borrow();
        for key in self.values.keys().chain(self.flags.iter()) {
            if !consumed.iter().any(|c| c == key) {
                return Err(ParseArgsError(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(["--cores", "4", "--scheme=ucp", "--quick"]).unwrap();
        assert_eq!(a.get_or("scheme", "lru"), "ucp");
        assert_eq!(a.get_num("cores", 1usize).unwrap(), 4);
        assert!(a.flag("quick"));
        assert!(!a.flag("verbose"));
        a.reject_unknown().unwrap();
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a.get_or("scheme", "lru"), "lru");
        assert_eq!(a.get_num("cores", 2usize).unwrap(), 2);
    }

    #[test]
    fn positional_rejected() {
        let err = Args::parse(["oops"]).unwrap_err();
        assert!(err.to_string().contains("positional"));
    }

    #[test]
    fn bad_number_rejected() {
        let a = Args::parse(["--cores", "banana"]).unwrap();
        assert!(a.get_num("cores", 1usize).is_err());
    }

    #[test]
    fn unknown_key_rejected() {
        let a = Args::parse(["--corse", "4"]).unwrap();
        let _ = a.get_num("cores", 1usize);
        let err = a.reject_unknown().unwrap_err();
        assert!(err.to_string().contains("corse"));
    }

    #[test]
    fn trailing_key_becomes_flag() {
        let a = Args::parse(["--quick", "--cores", "2"]).unwrap();
        assert!(a.flag("quick"));
        assert_eq!(a.get_num("cores", 0usize).unwrap(), 2);
    }
}
