//! Scheme selection: which shared-LLC organization to simulate.

use nucache_cache::policy::ShipPc;
use nucache_cache::{CacheGeometry, ClassicLlc, SharedLlc};
use nucache_core::{NuCache, NuCacheConfig};
use nucache_partition::{baselines, PippLlc, UcpLlc};
use std::fmt;

/// Default repartitioning epoch for UCP and PIPP (LLC accesses).
pub const PARTITION_EPOCH: u64 = 100_000;

/// A shared-LLC organization under study.
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// Shared LRU — the baseline everything is normalized to.
    Lru,
    /// DIP (thread-oblivious dynamic insertion).
    Dip,
    /// DRRIP (dynamic re-reference interval prediction).
    Drrip,
    /// TADIP-F (thread-aware dynamic insertion).
    Tadip,
    /// Utility-based cache partitioning.
    Ucp,
    /// Promotion/insertion pseudo-partitioning.
    Pipp,
    /// SHiP-PC (signature-based hit prediction; post-dates the paper,
    /// included as a modern PC-based comparison point).
    Ship,
    /// NUcache with the given configuration.
    NuCache(NuCacheConfig),
}

impl Scheme {
    /// The schemes compared in the headline figures, in display order.
    pub fn headline_suite() -> Vec<Scheme> {
        vec![
            Scheme::Lru,
            Scheme::Ucp,
            Scheme::Pipp,
            Scheme::Tadip,
            Scheme::NuCache(NuCacheConfig::default()),
        ]
    }

    /// NUcache with default parameters.
    pub fn nucache_default() -> Scheme {
        Scheme::NuCache(NuCacheConfig::default())
    }

    /// Short name used in tables.
    pub fn name(&self) -> String {
        match self {
            Scheme::Lru => "lru".into(),
            Scheme::Dip => "dip".into(),
            Scheme::Drrip => "drrip".into(),
            Scheme::Tadip => "tadip".into(),
            Scheme::Ucp => "ucp".into(),
            Scheme::Pipp => "pipp".into(),
            Scheme::Ship => "ship-pc".into(),
            Scheme::NuCache(c) => format!("nucache-d{}", c.deli_ways),
        }
    }

    /// Instantiates the shared LLC for this scheme.
    pub fn build(&self, geom: CacheGeometry, num_cores: usize, seed: u64) -> Box<dyn SharedLlc> {
        match self {
            Scheme::Lru => Box::new(baselines::lru(geom, num_cores)),
            Scheme::Dip => Box::new(baselines::dip(geom, num_cores, seed)),
            Scheme::Drrip => Box::new(baselines::drrip(geom, num_cores, seed)),
            Scheme::Tadip => Box::new(baselines::tadip(geom, num_cores, seed)),
            Scheme::Ucp => Box::new(UcpLlc::new(geom, num_cores, PARTITION_EPOCH)),
            Scheme::Pipp => Box::new(PippLlc::new(geom, num_cores, PARTITION_EPOCH, seed)),
            Scheme::Ship => Box::new(ClassicLlc::new(geom, ShipPc::new(&geom), num_cores)),
            Scheme::NuCache(config) => {
                let mut c = *config;
                // Clamp the DeliWays to leave at least one MainWay on
                // narrow test caches.
                if c.deli_ways >= geom.associativity() {
                    c.deli_ways = geom.associativity() / 2;
                }
                c.seed ^= seed;
                Box::new(NuCache::new(geom, num_cores, c))
            }
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_common::{AccessKind, CoreId, LineAddr, Pc};

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64 * 16 * 64, 16, 64)
    }

    #[test]
    fn every_scheme_builds_and_serves() {
        let mut schemes = Scheme::headline_suite();
        schemes.push(Scheme::Dip);
        schemes.push(Scheme::Drrip);
        schemes.push(Scheme::Ship);
        for s in schemes {
            let mut llc = s.build(geom(), 2, 1);
            llc.access(CoreId::new(0), Pc::new(1), LineAddr::new(7), AccessKind::Read);
            let hit = llc.access(CoreId::new(0), Pc::new(1), LineAddr::new(7), AccessKind::Read);
            assert!(hit.is_hit(), "{s} failed a trivial re-reference");
            assert_eq!(llc.stats().accesses(), 2, "{s} miscounted");
        }
    }

    #[test]
    fn headline_suite_is_led_by_lru_and_ends_with_nucache() {
        let suite = Scheme::headline_suite();
        assert_eq!(suite.first().unwrap().name(), "lru");
        assert!(suite.last().unwrap().name().starts_with("nucache"));
    }

    #[test]
    fn nucache_deli_clamped_on_narrow_caches() {
        let narrow = CacheGeometry::new(64 * 4 * 16, 4, 64); // 4-way
        let llc = Scheme::nucache_default().build(narrow, 1, 0);
        assert!(llc.scheme_name().starts_with("nucache-d2"));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Scheme::Ucp.name(), "ucp");
        assert_eq!(Scheme::nucache_default().name(), "nucache-d8");
        assert_eq!(format!("{}", Scheme::Pipp), "pipp");
    }
}
