//! Scheme selection: which shared-LLC organization to simulate.

use nucache_cache::policy::{Dip, Drrip, Lru, ShipPc, TadipF};
use nucache_cache::{CacheGeometry, ClassicLlc, SharedLlc};
use nucache_core::{NuCache, NuCacheConfig};
use nucache_partition::{baselines, PippLlc, UcpLlc};
use std::fmt;

/// Default repartitioning epoch for UCP and PIPP (LLC accesses).
pub const PARTITION_EPOCH: u64 = 100_000;

/// A shared-LLC organization under study.
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// Shared LRU — the baseline everything is normalized to.
    Lru,
    /// DIP (thread-oblivious dynamic insertion).
    Dip,
    /// DRRIP (dynamic re-reference interval prediction).
    Drrip,
    /// TADIP-F (thread-aware dynamic insertion).
    Tadip,
    /// Utility-based cache partitioning.
    Ucp,
    /// Promotion/insertion pseudo-partitioning.
    Pipp,
    /// SHiP-PC (signature-based hit prediction; post-dates the paper,
    /// included as a modern PC-based comparison point).
    Ship,
    /// NUcache with the given configuration.
    NuCache(NuCacheConfig),
}

impl Scheme {
    /// The schemes compared in the headline figures, in display order.
    pub fn headline_suite() -> Vec<Scheme> {
        vec![
            Scheme::Lru,
            Scheme::Ucp,
            Scheme::Pipp,
            Scheme::Tadip,
            Scheme::NuCache(NuCacheConfig::default()),
        ]
    }

    /// NUcache with default parameters.
    pub fn nucache_default() -> Scheme {
        Scheme::NuCache(NuCacheConfig::default())
    }

    /// Short name used in tables.
    pub fn name(&self) -> String {
        match self {
            Scheme::Lru => "lru".into(),
            Scheme::Dip => "dip".into(),
            Scheme::Drrip => "drrip".into(),
            Scheme::Tadip => "tadip".into(),
            Scheme::Ucp => "ucp".into(),
            Scheme::Pipp => "pipp".into(),
            Scheme::Ship => "ship-pc".into(),
            Scheme::NuCache(c) => format!("nucache-d{}", c.deli_ways),
        }
    }

    /// Instantiates the shared LLC for this scheme as a trait object —
    /// the entry point for callers that need dynamic dispatch (telemetry,
    /// audits, tools holding heterogeneous LLC collections).
    pub fn build(&self, geom: CacheGeometry, num_cores: usize, seed: u64) -> Box<dyn SharedLlc> {
        self.build_concrete(geom, num_cores, seed).boxed()
    }

    /// Instantiates the shared LLC for this scheme with its concrete type
    /// preserved, so the driver's hot loop can be monomorphized per
    /// organization instead of paying a virtual call per access.
    pub fn build_concrete(&self, geom: CacheGeometry, num_cores: usize, seed: u64) -> BuiltLlc {
        match self {
            Scheme::Lru => BuiltLlc::Lru(baselines::lru(geom, num_cores)),
            Scheme::Dip => BuiltLlc::Dip(baselines::dip(geom, num_cores, seed)),
            Scheme::Drrip => BuiltLlc::Drrip(baselines::drrip(geom, num_cores, seed)),
            Scheme::Tadip => BuiltLlc::Tadip(baselines::tadip(geom, num_cores, seed)),
            Scheme::Ucp => BuiltLlc::Ucp(UcpLlc::new(geom, num_cores, PARTITION_EPOCH)),
            Scheme::Pipp => BuiltLlc::Pipp(PippLlc::new(geom, num_cores, PARTITION_EPOCH, seed)),
            Scheme::Ship => BuiltLlc::Ship(ClassicLlc::new(geom, ShipPc::new(&geom), num_cores)),
            Scheme::NuCache(config) => {
                let mut c = *config;
                // Clamp the DeliWays to leave at least one MainWay on
                // narrow test caches.
                if c.deli_ways >= geom.associativity() {
                    c.deli_ways = geom.associativity() / 2;
                }
                c.seed ^= seed;
                BuiltLlc::NuCache(NuCache::new(geom, num_cores, c))
            }
        }
    }
}

/// A concretely-typed LLC built by [`Scheme::build_concrete`].
///
/// Each variant keeps the organization's real type, so matching once and
/// running the simulation loop inside the arm monomorphizes every LLC
/// call in the loop (static dispatch, inlining-friendly). The behaviour
/// is bit-identical to driving the same scheme through `dyn SharedLlc` —
/// asserted by `tests/driver_equivalence.rs`.
#[allow(missing_docs)]
// variant names mirror `Scheme`'s documented arms
// One value exists per run and it never moves after construction, so the
// size spread between variants costs nothing; boxing the large ones would
// put a pointer chase back into the monomorphized hot loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum BuiltLlc {
    Lru(ClassicLlc<Lru>),
    Dip(ClassicLlc<Dip>),
    Drrip(ClassicLlc<Drrip>),
    Tadip(ClassicLlc<TadipF>),
    Ucp(UcpLlc),
    Pipp(PippLlc),
    Ship(ClassicLlc<ShipPc>),
    NuCache(NuCache),
}

/// Runs `$body` with `$l` bound to the concrete LLC inside a
/// [`BuiltLlc`], monomorphizing the body per variant.
macro_rules! with_built {
    ($llc:expr, $l:ident => $body:expr) => {
        match $llc {
            $crate::scheme::BuiltLlc::Lru($l) => $body,
            $crate::scheme::BuiltLlc::Dip($l) => $body,
            $crate::scheme::BuiltLlc::Drrip($l) => $body,
            $crate::scheme::BuiltLlc::Tadip($l) => $body,
            $crate::scheme::BuiltLlc::Ucp($l) => $body,
            $crate::scheme::BuiltLlc::Pipp($l) => $body,
            $crate::scheme::BuiltLlc::Ship($l) => $body,
            $crate::scheme::BuiltLlc::NuCache($l) => $body,
        }
    };
}
pub(crate) use with_built;

impl BuiltLlc {
    /// Erases the concrete type into a `Box<dyn SharedLlc>`.
    pub fn boxed(self) -> Box<dyn SharedLlc> {
        with_built!(self, l => Box::new(l))
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_common::{AccessKind, CoreId, LineAddr, Pc};

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64 * 16 * 64, 16, 64)
    }

    #[test]
    fn every_scheme_builds_and_serves() {
        let mut schemes = Scheme::headline_suite();
        schemes.push(Scheme::Dip);
        schemes.push(Scheme::Drrip);
        schemes.push(Scheme::Ship);
        for s in schemes {
            let mut llc = s.build(geom(), 2, 1);
            llc.access(CoreId::new(0), Pc::new(1), LineAddr::new(7), AccessKind::Read);
            let hit = llc.access(CoreId::new(0), Pc::new(1), LineAddr::new(7), AccessKind::Read);
            assert!(hit.is_hit(), "{s} failed a trivial re-reference");
            assert_eq!(llc.stats().accesses(), 2, "{s} miscounted");
        }
    }

    #[test]
    fn headline_suite_is_led_by_lru_and_ends_with_nucache() {
        let suite = Scheme::headline_suite();
        assert_eq!(suite.first().unwrap().name(), "lru");
        assert!(suite.last().unwrap().name().starts_with("nucache"));
    }

    #[test]
    fn nucache_deli_clamped_on_narrow_caches() {
        let narrow = CacheGeometry::new(64 * 4 * 16, 4, 64); // 4-way
        let llc = Scheme::nucache_default().build(narrow, 1, 0);
        assert!(llc.scheme_name().starts_with("nucache-d2"));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Scheme::Ucp.name(), "ucp");
        assert_eq!(Scheme::nucache_default().name(), "nucache-d8");
        assert_eq!(format!("{}", Scheme::Pipp), "pipp");
    }
}
