//! The evaluator: solo-run caching and normalized metrics.

use crate::config::SimConfig;
use crate::driver::{run_mix, run_mix_telemetry, run_solo, CoreResult, SimResult};
use crate::scheme::Scheme;
use crate::telemetry::{stream_path, TelemetrySpec};
use nucache_common::telemetry::JsonlSink;
use nucache_cpu::MultiProgramMetrics;
use nucache_trace::{Mix, SpecWorkload};
use std::collections::BTreeMap;

/// Computes weighted speedups and friends, caching the solo runs that
/// normalization needs (a solo run depends only on the workload and the
/// system configuration, not on the scheme under test).
///
/// # Examples
///
/// ```
/// use nucache_sim::{Evaluator, Scheme, SimConfig};
/// use nucache_trace::{Mix, SpecWorkload};
///
/// let mut eval = Evaluator::new(SimConfig::demo());
/// let mix = Mix::new("m", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]);
/// let (result, metrics) = eval.evaluate(&mix, &Scheme::Lru);
/// assert_eq!(result.per_core.len(), 2);
/// assert!(metrics.weighted_speedup > 0.0);
/// ```
#[derive(Debug)]
pub struct Evaluator {
    config: SimConfig,
    solo_cache: BTreeMap<SpecWorkload, CoreResult>,
    telemetry: Option<TelemetrySpec>,
    /// Next JSONL stream index (evaluators run serially, so a plain
    /// counter suffices).
    stream_index: usize,
}

impl Evaluator {
    /// Creates an evaluator for a fixed system configuration, picking up
    /// the process-wide telemetry directory
    /// ([`crate::telemetry::default_telemetry_dir`]) when one is active.
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        let telemetry = TelemetrySpec::from_default_dir();
        if telemetry.is_some() {
            crate::telemetry::note_manifest_config(&config);
        }
        Evaluator { config, solo_cache: BTreeMap::new(), telemetry, stream_index: 0 }
    }

    /// Overrides telemetry recording: `Some(spec)` streams every
    /// [`Evaluator::evaluate`] call into a per-run JSONL file under
    /// `spec.dir`, `None` disables it (regardless of the process-wide
    /// default).
    pub fn with_telemetry(mut self, telemetry: Option<TelemetrySpec>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The system configuration in use.
    pub const fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Solo result for `workload`, computed on first use and cached.
    pub fn solo(&mut self, workload: SpecWorkload) -> &CoreResult {
        let config = self.config;
        self.solo_cache.entry(workload).or_insert_with(|| run_solo(&config, workload))
    }

    /// Read-only view of the cached solo results, in workload order.
    pub fn solo_snapshot(&self) -> &BTreeMap<SpecWorkload, CoreResult> {
        &self.solo_cache
    }

    /// Seeds the solo cache with an externally computed result (the
    /// parallel runner primes evaluators this way).
    pub fn prime_solo(&mut self, workload: SpecWorkload, result: CoreResult) {
        self.solo_cache.insert(workload, result);
    }

    /// Solo IPC vector for a mix.
    pub fn solo_ipcs(&mut self, mix: &Mix) -> Vec<f64> {
        mix.workloads().iter().map(|&w| self.solo(w).ipc).collect()
    }

    /// Simulates `mix` under `scheme` and returns both the raw result and
    /// the normalized multiprogrammed metrics.
    ///
    /// With telemetry on, the run streams its events into a per-run
    /// JSONL file; the result is identical either way.
    ///
    /// # Panics
    ///
    /// Panics if a telemetry stream cannot be created or written.
    pub fn evaluate(&mut self, mix: &Mix, scheme: &Scheme) -> (SimResult, MultiProgramMetrics) {
        let solo = self.solo_ipcs(mix);
        let result = if let Some(spec) = &self.telemetry {
            let path = stream_path(&spec.dir, self.stream_index, mix.name(), &scheme.name());
            self.stream_index += 1;
            let mut sink = JsonlSink::create(&path)
                .unwrap_or_else(|e| panic!("creating telemetry stream {}: {e}", path.display()));
            let result =
                run_mix_telemetry(&self.config, mix, scheme, spec.snapshot_interval, &mut sink);
            sink.finish()
                .unwrap_or_else(|e| panic!("writing telemetry stream {}: {e}", path.display()));
            result
        } else {
            run_mix(&self.config, mix, scheme)
        };
        let metrics = MultiProgramMetrics::new(&result.ipcs(), &solo);
        (result, metrics)
    }

    /// Number of solo runs currently cached.
    pub fn cached_solo_runs(&self) -> usize {
        self.solo_cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_runs_are_cached() {
        let mut e = Evaluator::new(SimConfig::demo());
        let ipc1 = e.solo(SpecWorkload::HmmerLike).ipc;
        assert_eq!(e.cached_solo_runs(), 1);
        let ipc2 = e.solo(SpecWorkload::HmmerLike).ipc;
        assert_eq!(e.cached_solo_runs(), 1);
        assert_eq!(ipc1, ipc2);
    }

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let mut e = Evaluator::new(SimConfig::demo());
        let mix = Mix::new("m", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]);
        let (result, metrics) = e.evaluate(&mix, &Scheme::Lru);
        assert_eq!(metrics.num_cores(), 2);
        // Friendly co-runners on a demo cache: each core should retain a
        // decent fraction of its solo performance.
        assert!(metrics.weighted_speedup > 1.0, "ws = {}", metrics.weighted_speedup);
        assert!(metrics.weighted_speedup <= 2.0 + 1e-9);
        assert_eq!(result.per_core.len(), 2);
    }

    #[test]
    fn speedups_do_not_exceed_solo_by_much() {
        // Sharing can only help via extra capacity; with disjoint address
        // spaces a core cannot beat its solo IPC by more than noise.
        let mut e = Evaluator::new(SimConfig::demo());
        let mix = Mix::new("m", vec![SpecWorkload::Bzip2Like, SpecWorkload::SjengLike]);
        let (_, metrics) = e.evaluate(&mix, &Scheme::Lru);
        for s in &metrics.per_core_speedup {
            assert!(*s <= 1.05, "per-core speedup {s} > 1.05 is implausible");
            assert!(*s > 0.0);
        }
    }
}
