//! Run-level telemetry plumbing: output directory resolution, JSONL
//! stream naming, and machine-readable run manifests.
//!
//! The event *model* lives in [`nucache_common::telemetry`]; this module
//! is the simulation-side glue that turns it into files on disk:
//!
//! * [`set_default_telemetry_dir`] / [`default_telemetry_dir`] — a
//!   process-wide destination directory, installed by `--telemetry DIR`
//!   flags (or the `NUCACHE_TELEMETRY` environment variable). When unset,
//!   telemetry is off and simulations skip event construction entirely;
//! * [`TelemetrySpec`] — per-run knobs (destination, LLC snapshot
//!   cadence);
//! * [`stream_path`] — the canonical `NNN_mix__scheme.jsonl` naming for
//!   one simulation's event stream;
//! * [`Manifest`] / [`write_manifest`] — the `manifest.json` that makes
//!   every emitted CSV reproducible: configuration, git revision,
//!   wall-clock time, the streams written, and — when the run did not go
//!   cleanly — a `failures` section ([`FailureRecord`]) plus degradation
//!   `notes`, so partial results are explicitly labelled as partial;
//! * [`note_failure`] / [`note_degradation`] — process-wide registries
//!   the runner and driver report into as failures happen; experiment
//!   drivers drain them ([`take_failures`], [`take_degradations`]) into
//!   the manifest they write.
//!
//! Streams are written one file per (mix, scheme) job, so parallel
//! runners never contend on a writer and stream contents are
//! bit-identical at any `--jobs` value.

use crate::config::SimConfig;
use nucache_common::json::JsonValue;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Default accesses between periodic LLC counter snapshots — matches the
/// default NUcache selection epoch, so `llc_epoch` and `selection_epoch`
/// events interleave at comparable cadence.
pub const DEFAULT_SNAPSHOT_INTERVAL: u64 = 100_000;

fn dir_override() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

/// Installs a process-wide telemetry output directory (the `--telemetry`
/// flag calls this); `None` clears the override.
pub fn set_default_telemetry_dir(dir: Option<&Path>) {
    *dir_override().lock().expect("telemetry dir lock poisoned") = dir.map(Path::to_path_buf);
}

/// The active telemetry directory: the [`set_default_telemetry_dir`]
/// override when installed, else `NUCACHE_TELEMETRY` when set and
/// non-empty, else `None` (telemetry off).
pub fn default_telemetry_dir() -> Option<PathBuf> {
    if let Some(dir) = dir_override().lock().expect("telemetry dir lock poisoned").clone() {
        return Some(dir);
    }
    std::env::var_os("NUCACHE_TELEMETRY").filter(|v| !v.is_empty()).map(PathBuf::from)
}

fn config_slot() -> &'static Mutex<Option<SimConfig>> {
    static SLOT: OnceLock<Mutex<Option<SimConfig>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Records the system configuration of a telemetered run for the
/// manifest. The first configuration noted since the last
/// [`take_manifest_config`] wins, so configuration sweeps record their
/// base point. [`Runner`](crate::Runner) and
/// [`Evaluator`](crate::Evaluator) call this automatically whenever
/// telemetry is active.
pub fn note_manifest_config(config: &SimConfig) {
    let mut slot = config_slot().lock().expect("manifest config lock poisoned");
    if slot.is_none() {
        *slot = Some(*config);
    }
}

/// Removes and returns the noted manifest configuration, resetting the
/// slot for the next experiment.
pub fn take_manifest_config() -> Option<SimConfig> {
    config_slot().lock().expect("manifest config lock poisoned").take()
}

/// One failed pipeline unit — a simulation job that kept panicking, or
/// an experiment step that aborted — recorded for the run manifest's
/// `failures` section instead of being lost with the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    /// Where the failure happened: an experiment step id (`fig5`) or the
    /// literal `"job"` for a runner-level simulation job.
    pub stage: String,
    /// The failed job, as `mix/scheme`, when the failure was job-level.
    pub job: Option<String>,
    /// Submission index of the failed job within its runner, when
    /// job-level.
    pub index: Option<u64>,
    /// How many times the unit was attempted before being given up on.
    pub attempts: u64,
    /// The panic or error message.
    pub message: String,
}

impl FailureRecord {
    /// Serializes to the object stored in the manifest's `failures`
    /// array.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("stage", self.stage.as_str().into()),
            ("job", self.job.as_deref().map_or(JsonValue::Null, JsonValue::from)),
            ("index", self.index.map_or(JsonValue::Null, JsonValue::from)),
            ("attempts", self.attempts.into()),
            ("message", self.message.as_str().into()),
        ])
    }
}

fn failure_slot() -> &'static Mutex<Vec<FailureRecord>> {
    static SLOT: OnceLock<Mutex<Vec<FailureRecord>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records a failed job or step in the process-wide registry that
/// [`take_failures`] drains into the run manifest. Callers that recover
/// from failures still note them — a manifest describing partial
/// results must say what is missing and why.
pub fn note_failure(record: FailureRecord) {
    failure_slot().lock().unwrap_or_else(PoisonError::into_inner).push(record);
}

/// Removes and returns every failure noted since the last call, sorted
/// by (stage, index) so the manifest listing is deterministic even
/// though workers note failures in completion order.
pub fn take_failures() -> Vec<FailureRecord> {
    let mut failures =
        std::mem::take(&mut *failure_slot().lock().unwrap_or_else(PoisonError::into_inner));
    failures.sort_by(|a, b| (&a.stage, a.index).cmp(&(&b.stage, b.index)));
    failures
}

fn degradation_slot() -> &'static Mutex<Vec<String>> {
    static SLOT: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records a graceful degradation (a telemetry stream lost to an I/O
/// error, a job flagged as stuck, …) for the manifest's `notes` section.
/// The first note also warns on stderr; later ones are manifest-only so
/// a batch with many degraded streams does not bury real output.
pub fn note_degradation(note: impl Into<String>) {
    let note = note.into();
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!("[degraded] {note} (further degradations recorded in the run manifest only)");
    });
    degradation_slot().lock().unwrap_or_else(PoisonError::into_inner).push(note);
}

/// Removes and returns every degradation note since the last call,
/// sorted for a deterministic manifest listing.
pub fn take_degradations() -> Vec<String> {
    let mut notes =
        std::mem::take(&mut *degradation_slot().lock().unwrap_or_else(PoisonError::into_inner));
    notes.sort();
    notes
}

/// Where and how densely one run records telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Directory JSONL streams are written into.
    pub dir: PathBuf,
    /// Total issued accesses between periodic LLC counter snapshots.
    pub snapshot_interval: u64,
}

impl TelemetrySpec {
    /// Creates a spec writing to `dir` at the default snapshot cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TelemetrySpec { dir: dir.into(), snapshot_interval: DEFAULT_SNAPSHOT_INTERVAL }
    }

    /// A spec for the process-wide default directory, if one is active.
    pub fn from_default_dir() -> Option<Self> {
        default_telemetry_dir().map(TelemetrySpec::new)
    }
}

/// The JSONL stream path for job number `index` simulating `mix` under
/// `scheme`: `dir/NNN_mix__scheme.jsonl`.
///
/// The index keeps streams unique when one mix runs under identically
/// named schemes (e.g. epoch-length sweeps where every column is
/// `nucache-d8`), and sorts streams in submission order.
pub fn stream_path(dir: &Path, index: usize, mix: &str, scheme: &str) -> PathBuf {
    let sanitize = |s: &str| -> String {
        s.chars()
            .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
            .collect()
    };
    dir.join(format!("{:03}_{}__{}.jsonl", index, sanitize(mix), sanitize(scheme)))
}

/// Best-effort current git revision, read directly from `.git` (no
/// subprocess, works offline): resolves `HEAD` through one level of
/// `ref:` indirection, falling back to `packed-refs`.
pub fn git_revision() -> Option<String> {
    let root = find_git_dir()?;
    let head = std::fs::read_to_string(root.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        return (!head.is_empty()).then(|| head.to_string());
    };
    if let Ok(rev) = std::fs::read_to_string(root.join(refname)) {
        return Some(rev.trim().to_string());
    }
    let packed = std::fs::read_to_string(root.join("packed-refs")).ok()?;
    packed
        .lines()
        .filter(|l| !l.starts_with('#') && !l.starts_with('^'))
        .find_map(|l| l.strip_suffix(refname).map(|rev| rev.trim().to_string()))
}

/// Walks up from the current directory looking for a `.git` directory.
fn find_git_dir() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join(".git");
        if candidate.is_dir() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Everything needed to reproduce one telemetered run, serialized as
/// `manifest.json` next to the JSONL streams.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// The experiment or driver that produced the streams (e.g.
    /// `fig5_dual_core`).
    pub experiment: String,
    /// Command-line arguments the driver was invoked with.
    pub argv: Vec<String>,
    /// Git revision of the tree, when resolvable.
    pub git_revision: Option<String>,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub jobs: u64,
    /// Whether quick mode (shortened runs) was active.
    pub quick: bool,
    /// The system configuration of the primary runs (experiments that
    /// sweep configurations record their base point).
    pub config: Option<SimConfig>,
    /// JSONL streams written, relative to the manifest's directory.
    pub streams: Vec<String>,
    /// Jobs and steps that failed; empty for a clean run. A non-empty
    /// list means every other number in this directory is a *partial*
    /// result.
    pub failures: Vec<FailureRecord>,
    /// Graceful degradations that did not fail anything (lost telemetry
    /// streams, stuck-job watchdog flags, …).
    pub notes: Vec<String>,
}

impl Manifest {
    /// Serializes to the `manifest.json` object.
    pub fn to_json(&self) -> JsonValue {
        let config = self.config.as_ref().map_or(JsonValue::Null, |c| {
            JsonValue::obj(vec![
                ("num_cores", c.num_cores.into()),
                ("llc_bytes", c.llc.size_bytes().into()),
                ("llc_associativity", c.llc.associativity().into()),
                ("llc_block_bytes", u64::from(c.llc.block_bytes()).into()),
                ("l1_bytes", c.l1.size_bytes().into()),
                ("l2_bytes", c.l2.size_bytes().into()),
                ("warmup_accesses", c.warmup_accesses.into()),
                ("measure_accesses", c.measure_accesses.into()),
                ("seed", c.seed.into()),
            ])
        });
        JsonValue::obj(vec![
            ("experiment", self.experiment.as_str().into()),
            ("argv", JsonValue::Arr(self.argv.iter().map(|a| a.as_str().into()).collect())),
            ("git_revision", self.git_revision.as_deref().map_or(JsonValue::Null, JsonValue::from)),
            ("wall_seconds", self.wall_seconds.into()),
            ("jobs", self.jobs.into()),
            ("quick", self.quick.into()),
            ("config", config),
            ("streams", JsonValue::Arr(self.streams.iter().map(|s| s.as_str().into()).collect())),
            (
                "failures",
                JsonValue::Arr(self.failures.iter().map(FailureRecord::to_json).collect()),
            ),
            ("notes", JsonValue::Arr(self.notes.iter().map(|n| n.as_str().into()).collect())),
        ])
    }
}

/// Writes `manifest.json` into `dir`, filling `streams` with the JSONL
/// files currently present there (sorted, so the listing is stable).
///
/// # Errors
///
/// Returns an error when the directory cannot be created or the file
/// cannot be written.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut manifest = manifest.clone();
    if manifest.streams.is_empty() {
        let mut streams: Vec<String> = std::fs::read_dir(dir)?
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".jsonl"))
            .collect();
        streams.sort();
        manifest.streams = streams;
    }
    let path = dir.join("manifest.json");
    std::fs::write(&path, manifest.to_json().to_string_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucache_common::json;

    #[test]
    fn stream_paths_are_sanitized_and_ordered() {
        let d = Path::new("/tmp/t");
        let p = stream_path(d, 7, "mix2_01", "nucache-d8");
        assert_eq!(p, d.join("007_mix2_01__nucache-d8.jsonl"));
        let weird = stream_path(d, 0, "a/b c", "x:y");
        assert_eq!(weird, d.join("000_a-b-c__x-y.jsonl"));
    }

    #[test]
    fn default_dir_env_and_override() {
        // Override wins and is clearable. (Env-var behaviour is covered
        // implicitly: with no override and no env var, the default is
        // None in the test environment unless the harness sets it.)
        set_default_telemetry_dir(Some(Path::new("/tmp/override")));
        assert_eq!(default_telemetry_dir(), Some(PathBuf::from("/tmp/override")));
        set_default_telemetry_dir(None);
    }

    #[test]
    fn git_revision_resolves_in_this_repo() {
        // The workspace is a git repository; the revision must resolve
        // to a 40-hex-digit commit id.
        let rev = git_revision().expect("repo has a revision");
        assert_eq!(rev.len(), 40, "unexpected revision '{rev}'");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn manifest_round_trips_and_lists_streams() {
        let dir = std::env::temp_dir().join(format!("nucache-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("001_m__s.jsonl"), "{}\n").unwrap();
        std::fs::write(dir.join("000_m__s.jsonl"), "{}\n").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let manifest = Manifest {
            experiment: "unit_test".into(),
            argv: vec!["--telemetry".into(), dir.display().to_string()],
            git_revision: git_revision(),
            wall_seconds: 1.5,
            jobs: 4,
            quick: true,
            config: Some(SimConfig::demo()),
            streams: Vec::new(),
            failures: vec![FailureRecord {
                stage: "fig5".into(),
                job: Some("mix2_01/nucache-d8".into()),
                index: Some(3),
                attempts: 2,
                message: "injected fault: worker-panic at index 3".into(),
            }],
            notes: vec!["telemetry stream lost".into()],
        };
        let path = write_manifest(&dir, &manifest).unwrap();
        let parsed = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("unit_test"));
        assert_eq!(parsed.get("jobs").unwrap().as_u64(), Some(4));
        assert_eq!(parsed.get("quick").unwrap().as_bool(), Some(true));
        let streams = parsed.get("streams").unwrap().as_arr().unwrap();
        assert_eq!(streams.len(), 2, "only jsonl files listed");
        assert_eq!(streams[0].as_str(), Some("000_m__s.jsonl"), "sorted");
        let config = parsed.get("config").unwrap();
        assert!(config.get("llc_bytes").unwrap().as_u64().unwrap() > 0);
        assert!(parsed.get("git_revision").unwrap().as_str().is_some());
        let failures = parsed.get("failures").unwrap().as_arr().unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].get("stage").unwrap().as_str(), Some("fig5"));
        assert_eq!(failures[0].get("index").unwrap().as_u64(), Some(3));
        assert_eq!(failures[0].get("attempts").unwrap().as_u64(), Some(2));
        assert!(failures[0].get("message").unwrap().as_str().unwrap().contains("injected fault"));
        let notes = parsed.get("notes").unwrap().as_arr().unwrap();
        assert_eq!(notes.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_registry_drains_sorted() {
        // The registry is process-wide; drain whatever other tests left
        // behind first so this test observes only its own records.
        let _ = take_failures();
        note_failure(FailureRecord {
            stage: "job".into(),
            job: Some("b/lru".into()),
            index: Some(7),
            attempts: 1,
            message: "boom".into(),
        });
        note_failure(FailureRecord {
            stage: "job".into(),
            job: Some("a/lru".into()),
            index: Some(2),
            attempts: 1,
            message: "boom".into(),
        });
        // Other tests in this binary may note failures concurrently, so
        // assert only on the records this test created: both present,
        // in (stage, index) order.
        let ours: Vec<FailureRecord> =
            take_failures().into_iter().filter(|f| f.message == "boom").collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0].index, Some(2), "sorted by index within a stage");
        assert_eq!(ours[1].index, Some(7));
    }
}
