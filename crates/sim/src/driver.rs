//! The multicore simulation driver.
//!
//! Each core owns a trace generator, a private L1/L2 stack and a cycle
//! clock. Cores are interleaved in global-cycle order (the core with the
//! smallest elapsed cycle count issues next), so LLC contention follows
//! each application's actual memory intensity: a stalled core naturally
//! issues fewer LLC accesses per unit time.
//!
//! Runs proceed in two stages: a warm-up of `warmup_accesses` per core
//! (after which all statistics and clocks are reset while cache contents
//! and learned policy state are kept), then measurement until every core
//! has issued `measure_accesses`. A core reaching its quota freezes its
//! metrics but keeps running so the remaining cores still see contention.

use crate::config::SimConfig;
use crate::scheme::{with_built, Scheme};
use crate::telemetry::DEFAULT_SNAPSHOT_INTERVAL;
use nucache_cache::hierarchy::{PrivateHierarchy, PrivateOutcome};
use nucache_cache::SharedLlc;
use nucache_common::telemetry::{Event, EventSink, NullSink, Stage};
use nucache_common::{Access, AccessKind, Addr, CacheStats, CoreId, Pc};
use nucache_cpu::{CoreClock, ServiceLevel};
use nucache_trace::{Mix, SpecWorkload, TraceGen, BLOCK_BITS, TRACE_BLOCK};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of core accesses issued by simulation stages, for
/// throughput reporting (accesses/sec) by experiment drivers.
static SIMULATED_ACCESSES: AtomicU64 = AtomicU64::new(0);

/// Returns the number of per-core accesses simulated since the last call
/// (all stages, all threads) and resets the counter.
pub fn take_simulated_accesses() -> u64 {
    SIMULATED_ACCESSES.swap(0, Ordering::Relaxed)
}

/// Per-core results of a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreResult {
    /// Workload the core ran.
    pub workload: String,
    /// Measured IPC (frozen at the access quota).
    pub ipc: f64,
    /// Instructions at the freeze point.
    pub instructions: u64,
    /// Cycles at the freeze point.
    pub cycles: u64,
    /// LLC counters attributed to this core (measurement window).
    pub llc: CacheStats,
    /// LLC misses per kilo-instruction.
    pub llc_mpki: f64,
}

/// Results of simulating one mix under one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Scheme name (as reported by the LLC itself).
    pub scheme: String,
    /// Mix name.
    pub mix: String,
    /// Per-core results.
    pub per_core: Vec<CoreResult>,
    /// Aggregate LLC counters (measurement window).
    pub llc_totals: CacheStats,
}

impl SimResult {
    /// Measured IPC vector, indexed by core.
    pub fn ipcs(&self) -> Vec<f64> {
        self.per_core.iter().map(|c| c.ipc).collect()
    }
}

struct CoreState {
    gen: TraceGen,
    /// Block buffer refilled via [`TraceGen::fill_block`]: the generator
    /// runs up to [`TRACE_BLOCK`] accesses ahead of consumption, which is
    /// interleave-safe because each core's stream depends only on its own
    /// `(spec, core, seed)`.
    buf: [Access; TRACE_BLOCK],
    /// Next unconsumed index into `buf` (`TRACE_BLOCK` when empty).
    buf_pos: usize,
    hierarchy: PrivateHierarchy,
    clock: CoreClock,
    accesses: u64,
    workload: String,
    /// Per-core LLC counters snapshotted when the core hits its quota, so
    /// post-quota contention running doesn't inflate its statistics.
    llc_snapshot: Option<CacheStats>,
}

impl CoreState {
    /// The next access of this core's stream, refilling the block buffer
    /// from the generator when it runs dry.
    #[inline(always)]
    fn next_access(&mut self) -> Access {
        if self.buf_pos == TRACE_BLOCK {
            self.gen.fill_block(&mut self.buf);
            self.buf_pos = 0;
        }
        let access = self.buf[self.buf_pos];
        self.buf_pos += 1;
        access
    }
}

/// Simulates `mix` on `config` under `scheme`.
///
/// Deterministic for a given `(config, mix, scheme)` triple.
///
/// # Panics
///
/// Panics if the mix's core count differs from the config's.
pub fn run_mix(config: &SimConfig, mix: &Mix, scheme: &Scheme) -> SimResult {
    // Build the LLC with its concrete type and run the loop inside the
    // variant match: every `llc.access` in the hot path statically
    // dispatches to this scheme's implementation. Results are
    // bit-identical to the `dyn` path (`tests/driver_equivalence.rs`).
    let mut llc = scheme.build_concrete(config.llc, config.num_cores, config.seed);
    let mut sink = NullSink;
    with_built!(&mut llc, l => run_mix_impl(config, mix, l, DEFAULT_SNAPSHOT_INTERVAL, &mut sink))
}

/// Simulates `mix` under `scheme` while streaming epoch-level telemetry
/// into `sink`: a `run_start` banner, periodic cumulative LLC counter
/// snapshots every `snapshot_interval` issued accesses, any
/// scheme-internal events (NUcache selection epochs), and a `run_end`
/// record with the frozen per-core results.
///
/// Telemetry is observation only — the returned [`SimResult`] is
/// bit-identical to [`run_mix`]'s for the same inputs (asserted by
/// `tests/telemetry_determinism.rs`).
///
/// # Panics
///
/// Panics if the mix's core count differs from the config's.
pub fn run_mix_telemetry(
    config: &SimConfig,
    mix: &Mix,
    scheme: &Scheme,
    snapshot_interval: u64,
    sink: &mut dyn EventSink,
) -> SimResult {
    let mut llc = scheme.build(config.llc, config.num_cores, config.seed);
    run_mix_on_sink(config, mix, llc.as_mut(), snapshot_interval, sink)
}

/// Simulates `mix` under `scheme` with the differential audit oracle
/// enabled: every tag-array operation is mirrored into a naive reference
/// model and cross-checked, and organizations with epoch-level state
/// (NUcache) verify their epoch invariants as they run. Any divergence
/// panics at the faulting operation, so a `(result, stats)` return means
/// the run completed with zero divergences over `stats.array_ops`
/// mirrored operations.
///
/// The result is bit-identical to [`run_mix`]'s for the same inputs —
/// the oracle observes, it never steers.
///
/// # Panics
///
/// Panics if the mix's core count differs from the config's, or if the
/// oracle detects a divergence or invariant violation.
pub fn run_mix_audited(
    config: &SimConfig,
    mix: &Mix,
    scheme: &Scheme,
) -> (SimResult, nucache_cache::AuditStats) {
    let mut llc = scheme.build(config.llc, config.num_cores, config.seed);
    llc.set_audit(true);
    let result = run_mix_on(config, mix, llc.as_mut());
    let stats = llc.audit_stats().unwrap_or_default();
    (result, stats)
}

/// Simulates `mix` on a caller-provided LLC instance, so callers can
/// inspect scheme-specific internals (monitors, chosen PCs, …) after the
/// run.
///
/// # Panics
///
/// Panics if the mix's core count differs from the config's.
pub fn run_mix_on(config: &SimConfig, mix: &Mix, llc: &mut dyn SharedLlc) -> SimResult {
    let mut sink = NullSink;
    run_mix_on_sink(config, mix, llc, DEFAULT_SNAPSHOT_INTERVAL, &mut sink)
}

/// [`run_mix_on`] with an explicit telemetry sink (the general form the
/// other entry points delegate to).
///
/// # Panics
///
/// Panics if the mix's core count differs from the config's, or
/// `snapshot_interval` is zero while the sink is enabled.
pub fn run_mix_on_sink(
    config: &SimConfig,
    mix: &Mix,
    llc: &mut dyn SharedLlc,
    snapshot_interval: u64,
    sink: &mut dyn EventSink,
) -> SimResult {
    run_mix_impl(config, mix, llc, snapshot_interval, sink)
}

/// The simulation loop, generic over the LLC's type: `dyn SharedLlc`
/// entry points instantiate it once with dynamic dispatch, while
/// [`run_mix`] instantiates it per concrete organization so the per-access
/// LLC calls are static and inlinable.
fn run_mix_impl<L: SharedLlc + ?Sized>(
    config: &SimConfig,
    mix: &Mix,
    llc: &mut L,
    snapshot_interval: u64,
    sink: &mut dyn EventSink,
) -> SimResult {
    assert_eq!(mix.num_cores(), config.num_cores, "mix/config core-count mismatch");
    config.validate();
    let telemetry = sink.is_enabled();
    if telemetry {
        assert!(snapshot_interval > 0, "snapshot_interval must be positive with telemetry on");
        llc.set_telemetry(true);
        sink.record_event(&Event::RunStart {
            mix: mix.name().to_string(),
            scheme: llc.scheme_name(),
            cores: config.num_cores as u64,
            seed: config.seed,
        });
    }
    let mut cores: Vec<CoreState> = mix
        .workloads()
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let core = CoreId::new(i as u8);
            CoreState {
                gen: TraceGen::new(&w.spec(), core, config.seed),
                buf: [Access::new(core, Pc::new(0), Addr::new(0), AccessKind::Read); TRACE_BLOCK],
                buf_pos: TRACE_BLOCK,
                hierarchy: PrivateHierarchy::new(core, config.l1, config.l2),
                clock: CoreClock::new(),
                accesses: 0,
                workload: w.name().to_string(),
                llc_snapshot: None,
            }
        })
        .collect();

    // Warm-up stage. The telemetry branch is decided once out here, so
    // the no-telemetry instantiation runs with the zero-sized [`NoTele`]
    // hook (no per-access check at all).
    if telemetry {
        let mut ctx = TeleCtx::new(&mut *sink, Stage::Warmup, snapshot_interval);
        run_until(config, &mut cores, llc, config.warmup_accesses, false, &mut ctx);
    } else {
        run_until(config, &mut cores, llc, config.warmup_accesses, false, &mut NoTele);
    }
    let warmup_issued: u64 = cores.iter().map(|c| c.accesses).sum();
    llc.reset_stats();
    for c in &mut cores {
        c.hierarchy.reset_stats();
        c.clock.reset();
        c.accesses = 0;
    }

    // Measurement stage.
    if telemetry {
        let mut ctx = TeleCtx::new(&mut *sink, Stage::Measure, snapshot_interval);
        run_until(config, &mut cores, llc, config.measure_accesses, true, &mut ctx);
    } else {
        run_until(config, &mut cores, llc, config.measure_accesses, true, &mut NoTele);
    }
    let measured_issued: u64 = cores.iter().map(|c| c.accesses).sum();
    SIMULATED_ACCESSES.fetch_add(warmup_issued + measured_issued, Ordering::Relaxed);

    let per_core: Vec<CoreResult> = cores
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let llc_stats = c.llc_snapshot.unwrap_or(llc.core_stats()[i]);
            let instructions = c.clock.measured_instructions();
            CoreResult {
                workload: c.workload.clone(),
                ipc: c.clock.measured_ipc(),
                instructions,
                cycles: c.clock.measured_cycles(),
                llc: llc_stats,
                llc_mpki: llc_stats.mpki(instructions),
            }
        })
        .collect();
    let result = SimResult {
        scheme: llc.scheme_name(),
        mix: mix.name().to_string(),
        per_core,
        llc_totals: *llc.stats(),
    };
    if telemetry {
        sink.record_event(&Event::RunEnd {
            scheme: result.scheme.clone(),
            ipcs: result.ipcs(),
            per_core: result.per_core.iter().map(|c| c.llc).collect(),
            totals: result.llc_totals,
        });
        llc.set_telemetry(false);
    }
    result
}

/// Per-stage telemetry bookkeeping threaded through [`run_until`]: counts
/// issued accesses, snapshots cumulative LLC counters every `interval`,
/// and forwards scheme-internal events (drained from the LLC) in stream
/// order ahead of each snapshot.
///
/// Telemetry is observation-only, so a failing sink degrades instead of
/// aborting the simulation: the first [`EventSink::try_record`] error
/// sets `lost` and all later events for this stage are skipped (not even
/// constructed). The owner of the sink surfaces the error — for
/// runner-managed JSONL streams that happens at `finish()`, which also
/// notes the degradation in the run manifest.
struct TeleCtx<'a> {
    sink: &'a mut dyn EventSink,
    stage: Stage,
    interval: u64,
    issued: u64,
    epochs: u64,
    lost: bool,
}

impl<'a> TeleCtx<'a> {
    fn new(sink: &'a mut dyn EventSink, stage: Stage, interval: u64) -> Self {
        TeleCtx { sink, stage, interval, issued: 0, epochs: 0, lost: false }
    }

    /// Records one event, degrading to a no-op after the first sink
    /// error.
    fn emit(&mut self, event: &Event) {
        if self.lost {
            return;
        }
        if self.sink.try_record(event).is_err() {
            self.lost = true;
        }
    }

    /// Emits buffered scheme events followed by one cumulative counter
    /// snapshot for the current stage.
    fn snapshot<L: SharedLlc + ?Sized>(&mut self, llc: &mut L) {
        for e in llc.drain_events() {
            self.emit(&e);
        }
        self.emit(&Event::LlcEpoch {
            stage: self.stage,
            index: self.epochs,
            accesses: self.issued,
            per_core: llc.core_stats().to_vec(),
            totals: *llc.stats(),
        });
        self.epochs += 1;
    }

    /// Called once per issued core access; snapshots on interval
    /// boundaries.
    fn on_access<L: SharedLlc + ?Sized>(&mut self, llc: &mut L) {
        self.issued += 1;
        if self.issued.is_multiple_of(self.interval) {
            self.snapshot(llc);
        }
    }

    /// Stage teardown: a final partial-epoch snapshot (when accesses were
    /// issued since the last boundary), plus a drain so late scheme
    /// events are never lost.
    fn finish<L: SharedLlc + ?Sized>(&mut self, llc: &mut L) {
        if !self.issued.is_multiple_of(self.interval) {
            self.snapshot(llc);
        } else {
            for e in llc.drain_events() {
                self.emit(&e);
            }
        }
    }
}

/// Compile-time telemetry dispatch for the hot loop. [`run_until`] is
/// generic over this hook: the telemetry instantiation threads a
/// [`TeleCtx`] through, while the common no-telemetry instantiation uses
/// [`NoTele`], whose empty callbacks vanish under monomorphization —
/// no per-access `Option` check survives in the emitted loop.
trait TeleHook {
    /// Called once per issued core access.
    fn on_access<L: SharedLlc + ?Sized>(&mut self, llc: &mut L);
    /// Called once when the stage completes.
    fn finish<L: SharedLlc + ?Sized>(&mut self, llc: &mut L);
}

/// The telemetry-off hook: both callbacks compile to nothing.
struct NoTele;

impl TeleHook for NoTele {
    #[inline(always)]
    fn on_access<L: SharedLlc + ?Sized>(&mut self, _llc: &mut L) {}
    #[inline(always)]
    fn finish<L: SharedLlc + ?Sized>(&mut self, _llc: &mut L) {}
}

impl TeleHook for TeleCtx<'_> {
    #[inline]
    fn on_access<L: SharedLlc + ?Sized>(&mut self, llc: &mut L) {
        TeleCtx::on_access(self, llc);
    }
    #[inline]
    fn finish<L: SharedLlc + ?Sized>(&mut self, llc: &mut L) {
        TeleCtx::finish(self, llc);
    }
}

/// Issues one access for `core`: drains the trace buffer, walks the
/// private hierarchy, touches the shared LLC on an L2 miss, and charges
/// the core clock. The single place the per-access work is defined —
/// both scheduler paths of [`run_until`] call it.
#[inline(always)]
fn step_core<L: SharedLlc + ?Sized, T: TeleHook>(
    config: &SimConfig,
    core: &mut CoreState,
    llc: &mut L,
    tele: &mut T,
) {
    let access = core.next_access();
    let line = access.addr.line(BLOCK_BITS);
    let level = match core.hierarchy.access(access.pc, line, access.kind) {
        PrivateOutcome::L1Hit => ServiceLevel::L1Hit,
        PrivateOutcome::L2Hit => ServiceLevel::L2Hit,
        PrivateOutcome::LlcAccess { writeback } => {
            if let Some(wb) = writeback {
                // Write-backs update the LLC copy but are not demand
                // accesses; charge no latency (write buffers hide it).
                llc.access(access.core, access.pc, wb, AccessKind::Write);
            }
            let out = llc.access(access.core, access.pc, line, access.kind);
            if out.is_hit() {
                ServiceLevel::LlcHit
            } else {
                ServiceLevel::Memory
            }
        }
    };
    // Overlapped misses (MLP) see a fraction of the raw latency;
    // private hits are latency-bound regardless. MLP degrees from the
    // trace model are powers of two, so the division is a shift on that
    // path — the quotient is identical either way.
    let raw = config.timing.latency(level);
    let effective = match level {
        ServiceLevel::L1Hit | ServiceLevel::L2Hit => raw,
        ServiceLevel::LlcHit | ServiceLevel::Memory => {
            let mlp = access.mlp as u32;
            let scaled =
                if mlp.is_power_of_two() { raw >> mlp.trailing_zeros() } else { raw / mlp };
            scaled.max(1)
        }
    };
    core.clock.charge(access.gap, effective);
    core.accesses += 1;
    tele.on_access(llc);
}

/// Advances all cores until each has issued `target` accesses in this
/// stage. With `freeze`, each core's clock freezes as it crosses the
/// target (measurement); without, the stage just runs (warm-up).
///
/// Scheduling: the least-advanced core (smallest `(cycles, index)`)
/// issues next. A flat min-scan over the core clocks replaces the old
/// `BinaryHeap` — at simulated core counts (≤16) the scan is
/// branch-predictable, allocation-free, and picks the same lexicographic
/// minimum the heap's `Reverse<(u64, usize)>` ordering did, so the
/// interleave (and therefore every result) is unchanged. Solo runs skip
/// the scheduler entirely.
fn run_until<L: SharedLlc + ?Sized, T: TeleHook>(
    config: &SimConfig,
    cores: &mut [CoreState],
    llc: &mut L,
    target: u64,
    freeze: bool,
    tele: &mut T,
) {
    if target == 0 {
        return;
    }
    if let [core] = cores {
        // Single-core fast path (solo normalization baselines, a large
        // share of `run_all` jobs): no scheduling decision at all.
        if core.accesses < target {
            while core.accesses < target {
                step_core(config, core, llc, tele);
            }
            if freeze {
                core.clock.freeze();
                core.llc_snapshot = Some(llc.core_stats()[0]);
            }
        }
        tele.finish(llc);
        return;
    }
    let mut remaining = cores.len() - cores.iter().filter(|c| c.accesses >= target).count();
    while remaining > 0 {
        let mut i = 0;
        let mut best = cores[0].clock.cycles();
        for (j, c) in cores.iter().enumerate().skip(1) {
            let cycles = c.clock.cycles();
            if cycles < best {
                best = cycles;
                i = j;
            }
        }
        let core = &mut cores[i];
        step_core(config, core, llc, tele);
        if core.accesses == target {
            if freeze {
                core.clock.freeze();
                core.llc_snapshot = Some(llc.core_stats()[i]);
            }
            remaining -= 1;
            // Finished cores keep running while others still need
            // contention; the loop exits once everyone is done.
        }
    }
    tele.finish(llc);
}

/// Simulates `mix` under NUcache and returns the LLC instance alongside
/// the result, for introspection of chosen PCs, monitors and DeliWays
/// counters.
pub fn run_mix_nucache(
    config: &SimConfig,
    mix: &Mix,
    nucache_config: nucache_core::NuCacheConfig,
) -> (SimResult, nucache_core::NuCache) {
    let mut c = nucache_config;
    if c.deli_ways >= config.llc.associativity() {
        c.deli_ways = config.llc.associativity() / 2;
    }
    let mut llc = nucache_core::NuCache::new(config.llc, config.num_cores, c);
    let result = run_mix_on(config, mix, &mut llc);
    (result, llc)
}

/// Runs `workload` alone on a single-core variant of `config` (same LLC
/// geometry) under the shared-LRU baseline; returns its solo result.
///
/// Solo IPC under the unmanaged baseline is the normalization reference
/// for every scheme, matching the paper's weighted-speedup definition.
pub fn run_solo(config: &SimConfig, workload: SpecWorkload) -> CoreResult {
    let solo_config = SimConfig { num_cores: 1, ..*config };
    let mix = Mix::new(format!("solo_{}", workload.name()), vec![workload]);
    let mut result = run_mix(&solo_config, &mix, &Scheme::Lru);
    result.per_core.remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_mix() -> Mix {
        Mix::new("t", vec![SpecWorkload::HmmerLike, SpecWorkload::Bzip2Like])
    }

    #[test]
    fn deterministic_end_to_end() {
        let config = SimConfig::demo();
        let a = run_mix(&config, &demo_mix(), &Scheme::Lru);
        let b = run_mix(&config, &demo_mix(), &Scheme::Lru);
        assert_eq!(a, b);
    }

    #[test]
    fn all_cores_reach_quota() {
        let config = SimConfig::demo();
        let r = run_mix(&config, &demo_mix(), &Scheme::Lru);
        for c in &r.per_core {
            assert!(c.instructions > config.measure_accesses, "gaps imply instructions > accesses");
            assert!(c.ipc > 0.0 && c.ipc <= 1.0);
        }
    }

    #[test]
    fn llc_attribution_sums_to_totals() {
        let config = SimConfig::demo();
        let r = run_mix(&config, &demo_mix(), &Scheme::Lru);
        let sum: u64 = r.per_core.iter().map(|c| c.llc.accesses()).sum();
        // Totals include accesses from cores still running after their
        // freeze, plus write-backs; per-core counters are a subset.
        assert!(sum <= r.llc_totals.accesses() + 1);
        assert!(r.llc_totals.accesses() > 0);
    }

    #[test]
    fn audited_run_is_bit_identical_and_counts_checks() {
        let config = SimConfig::demo();
        // Short epochs so the demo-length run crosses several selection
        // boundaries and the epoch invariants actually execute.
        let nucache = Scheme::NuCache(nucache_core::NuCacheConfig::default().with_epoch_len(500));
        for scheme in [Scheme::Lru, nucache] {
            let plain = run_mix(&config, &demo_mix(), &scheme);
            let (audited, stats) = run_mix_audited(&config, &demo_mix(), &scheme);
            assert_eq!(plain, audited, "the oracle must not perturb {}", scheme.name());
            assert!(stats.array_ops > 0, "{} must exercise the mirror", scheme.name());
            if scheme.name().starts_with("nucache") {
                assert!(stats.epoch_checks > 0, "NUcache must run epoch checks");
            }
        }
    }

    #[test]
    fn seed_changes_results() {
        let config = SimConfig::demo();
        let a = run_mix(&config, &demo_mix(), &Scheme::Lru);
        let b = run_mix(&config.with_seed(99), &demo_mix(), &Scheme::Lru);
        assert_ne!(a, b);
    }

    #[test]
    fn solo_run_is_single_core() {
        let config = SimConfig::demo();
        let solo = run_solo(&config, SpecWorkload::HmmerLike);
        assert_eq!(solo.workload, "hmmer_like");
        assert!(solo.ipc > 0.0);
    }

    #[test]
    fn memory_bound_core_has_lower_ipc() {
        let config = SimConfig::demo();
        let solo_friendly = run_solo(&config, SpecWorkload::HmmerLike);
        let solo_stream = run_solo(&config, SpecWorkload::LibquantumLike);
        assert!(
            solo_friendly.ipc > solo_stream.ipc,
            "cache-friendly {} vs streamer {}",
            solo_friendly.ipc,
            solo_stream.ipc
        );
        assert!(solo_stream.llc_mpki > solo_friendly.llc_mpki);
    }

    #[test]
    #[should_panic(expected = "core-count mismatch")]
    fn mix_size_must_match_config() {
        let config = SimConfig::demo(); // 2 cores
        let mix = Mix::new("one", vec![SpecWorkload::HmmerLike]);
        let _ = run_mix(&config, &mix, &Scheme::Lru);
    }
}
