//! The simulated system configuration (Table 1).

use nucache_cache::config::DEFAULT_BLOCK_BYTES;
use nucache_cache::CacheGeometry;
use nucache_cpu::TimingConfig;

/// Baseline private L1 capacity per core, in bytes (32 KB).
pub const BASELINE_L1_BYTES: u64 = 32 * 1024;
/// Baseline private L1 associativity.
pub const BASELINE_L1_WAYS: usize = 8;
/// Baseline private L2 capacity per core, in bytes (256 KB).
pub const BASELINE_L2_BYTES: u64 = 256 * 1024;
/// Baseline private L2 associativity.
pub const BASELINE_L2_WAYS: usize = 8;
/// Baseline shared-LLC capacity per core, in bytes (1 MiB; the LLC
/// scales with the core count).
pub const BASELINE_LLC_BYTES_PER_CORE: u64 = 1024 * 1024;
/// Baseline shared-LLC associativity.
pub const BASELINE_LLC_WAYS: usize = 16;
/// Baseline per-core warm-up accesses before measurement starts.
pub const BASELINE_WARMUP_ACCESSES: u64 = 300_000;
/// Baseline per-core measured accesses.
pub const BASELINE_MEASURE_ACCESSES: u64 = 1_000_000;
/// Baseline master seed for traces and stochastic policies.
pub const BASELINE_SEED: u64 = 0x5eed_2011;

/// Complete description of the simulated system and the run lengths.
///
/// The default corresponds to the evaluation's baseline: private
/// 32 KB / 8-way L1 and 256 KB / 8-way L2 per core, a shared 16-way LLC
/// sized at 1 MiB per core, 64 B blocks everywhere, and the default
/// latency ladder. Per-core run lengths: 300k warm-up accesses followed
/// by 1M measured accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of cores.
    pub num_cores: usize,
    /// Private L1 geometry (per core).
    pub l1: CacheGeometry,
    /// Private L2 geometry (per core).
    pub l2: CacheGeometry,
    /// Shared LLC geometry.
    pub llc: CacheGeometry,
    /// Latencies.
    pub timing: TimingConfig,
    /// Per-core accesses before measurement starts.
    pub warmup_accesses: u64,
    /// Per-core accesses measured (metrics freeze once a core reaches
    /// this; it keeps running until every core has).
    pub measure_accesses: u64,
    /// Master seed for traces and stochastic policies.
    pub seed: u64,
}

impl SimConfig {
    /// The baseline configuration for `num_cores` cores: shared LLC of
    /// 1 MiB per core, 16-way.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn baseline(num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        SimConfig {
            num_cores,
            l1: CacheGeometry::new(BASELINE_L1_BYTES, BASELINE_L1_WAYS, DEFAULT_BLOCK_BYTES),
            l2: CacheGeometry::new(BASELINE_L2_BYTES, BASELINE_L2_WAYS, DEFAULT_BLOCK_BYTES),
            llc: CacheGeometry::new(
                num_cores as u64 * BASELINE_LLC_BYTES_PER_CORE,
                BASELINE_LLC_WAYS,
                DEFAULT_BLOCK_BYTES,
            ),
            timing: TimingConfig::default(),
            warmup_accesses: BASELINE_WARMUP_ACCESSES,
            measure_accesses: BASELINE_MEASURE_ACCESSES,
            seed: BASELINE_SEED,
        }
    }

    /// A deliberately small configuration for doctests and unit tests:
    /// tiny private caches, a 64 KiB LLC and short runs.
    pub fn demo() -> Self {
        SimConfig {
            num_cores: 2,
            l1: CacheGeometry::new(4 * 1024, 4, 64),
            l2: CacheGeometry::new(16 * 1024, 8, 64),
            llc: CacheGeometry::new(64 * 1024, 16, 64),
            timing: TimingConfig::default(),
            warmup_accesses: 5_000,
            measure_accesses: 20_000,
            seed: BASELINE_SEED,
        }
    }

    /// Returns a copy with a different shared-LLC geometry.
    #[must_use]
    pub fn with_llc(mut self, llc: CacheGeometry) -> Self {
        self.llc = llc;
        self
    }

    /// Returns a copy with a different core count (the LLC is resized to
    /// keep 1 MiB per core only by [`SimConfig::baseline`]; this method
    /// leaves geometry untouched).
    #[must_use]
    pub fn with_cores(mut self, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        self.num_cores = num_cores;
        self
    }

    /// Returns a copy with different run lengths.
    #[must_use]
    pub fn with_run_lengths(mut self, warmup: u64, measure: u64) -> Self {
        assert!(measure > 0, "zero measurement window");
        self.warmup_accesses = warmup;
        self.measure_accesses = measure;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sanity-checks the composite configuration.
    ///
    /// # Panics
    ///
    /// Panics if the latency ladder is inverted or the LLC is smaller
    /// than one core's L2.
    pub fn validate(&self) {
        self.timing.validate();
        assert!(self.llc.size_bytes() >= self.l2.size_bytes(), "LLC smaller than a private L2");
        assert!(self.num_cores > 0, "need at least one core");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_scales_llc_with_cores() {
        for n in [1, 2, 4, 8] {
            let c = SimConfig::baseline(n);
            c.validate();
            assert_eq!(c.llc.size_bytes(), n as u64 * 1024 * 1024);
            assert_eq!(c.num_cores, n);
        }
    }

    #[test]
    fn demo_is_valid() {
        SimConfig::demo().validate();
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::demo()
            .with_llc(CacheGeometry::new(128 * 1024, 16, 64))
            .with_cores(3)
            .with_run_lengths(1, 2)
            .with_seed(7);
        assert_eq!(c.llc.size_bytes(), 128 * 1024);
        assert_eq!(c.num_cores, 3);
        assert_eq!(c.warmup_accesses, 1);
        assert_eq!(c.measure_accesses, 2);
        assert_eq!(c.seed, 7);
    }

    #[test]
    #[should_panic(expected = "zero measurement")]
    fn zero_measure_rejected() {
        let _ = SimConfig::demo().with_run_lengths(0, 0);
    }
}
