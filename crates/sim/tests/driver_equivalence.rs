//! The monomorphized driver hot loop is a dispatch change, not a
//! behaviour change: [`run_mix`] (concrete LLC type, static dispatch)
//! must produce bit-identical [`SimResult`]s to driving the same scheme
//! through `dyn SharedLlc` — for every scheme, and for arbitrary seeds
//! and run lengths.

use nucache_sim::{run_mix, run_mix_on, Scheme, SimConfig, SimResult};
use nucache_trace::{Mix, SpecWorkload};
use proptest::prelude::*;

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Lru,
        Scheme::Dip,
        Scheme::Drrip,
        Scheme::Tadip,
        Scheme::Ucp,
        Scheme::Pipp,
        Scheme::Ship,
        Scheme::nucache_default(),
    ]
}

fn contended_mix() -> Mix {
    Mix::new("sphinx_libq", vec![SpecWorkload::SphinxLike, SpecWorkload::LibquantumLike])
}

fn dyn_run(config: &SimConfig, mix: &Mix, scheme: &Scheme) -> SimResult {
    let mut llc = scheme.build(config.llc, config.num_cores, config.seed);
    run_mix_on(config, mix, llc.as_mut())
}

/// Every scheme: the monomorphized loop and the `dyn` loop agree bit for
/// bit on the demo configuration.
#[test]
fn mono_matches_dyn_for_every_scheme() {
    let config = SimConfig::demo();
    let mix = contended_mix();
    for scheme in all_schemes() {
        let mono = run_mix(&config, &mix, &scheme);
        let dynamic = dyn_run(&config, &mix, &scheme);
        assert_eq!(mono, dynamic, "mono vs dyn SimResult differs for {}", scheme.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The equivalence is not an artifact of one seed or run length:
    /// arbitrary seeds and (small) warmup/measure windows agree too.
    #[test]
    fn mono_matches_dyn_for_arbitrary_runs(
        seed in any::<u64>(),
        warmup in 1u64..2_000,
        measure in 1u64..5_000,
        scheme_idx in 0usize..8,
    ) {
        let mut config = SimConfig::demo().with_run_lengths(warmup, measure);
        config.seed = seed;
        let scheme = all_schemes().swap_remove(scheme_idx);
        let mix = contended_mix();
        let mono = run_mix(&config, &mix, &scheme);
        let dynamic = dyn_run(&config, &mix, &scheme);
        prop_assert_eq!(mono, dynamic, "mono vs dyn differs for {}", scheme.name());
    }
}
