//! Telemetry must be pure observation: recording events cannot change
//! simulation results, counters must agree with the returned statistics,
//! and JSONL streams must survive a round trip through the parser.

use nucache_common::json;
use nucache_common::telemetry::{CounterSink, Event, JsonlSink};
use nucache_sim::{run_mix, run_mix_telemetry, Scheme, SimConfig};
use nucache_trace::{Mix, SpecWorkload};

fn mix() -> Mix {
    Mix::new("tmix", vec![SpecWorkload::HmmerLike, SpecWorkload::LibquantumLike])
}

/// NUcache with an epoch short enough that demo-length runs (25k core
/// accesses) cross several selection epochs.
fn nucache_short_epoch() -> Scheme {
    Scheme::NuCache(nucache_core::NuCacheConfig::default().with_epoch_len(1_000))
}

const INTERVAL: u64 = 10_000;

#[test]
fn telemetry_does_not_perturb_results() {
    let config = SimConfig::demo();
    for scheme in [Scheme::Lru, nucache_short_epoch()] {
        let plain = run_mix(&config, &mix(), &scheme);
        let mut sink = CounterSink::default();
        let observed = run_mix_telemetry(&config, &mix(), &scheme, INTERVAL, &mut sink);
        assert_eq!(plain, observed, "telemetry changed the simulation under {}", plain.scheme);
    }
}

#[test]
fn counter_sink_totals_match_llc_stats() {
    let config = SimConfig::demo();
    let mut sink = CounterSink::default();
    let result = run_mix_telemetry(&config, &mix(), &nucache_short_epoch(), INTERVAL, &mut sink);

    assert_eq!(sink.run_starts, 1);
    assert_eq!(sink.run_ends, 1);
    assert!(sink.llc_epochs > 0, "demo runs span several snapshot intervals");
    assert!(sink.selection_epochs > 0, "NUcache must report its selection epochs");
    assert_eq!(sink.final_totals, result.llc_totals);
    let per_core: Vec<_> = result.per_core.iter().map(|c| c.llc).collect();
    assert_eq!(sink.final_per_core, per_core);
}

#[test]
fn plain_schemes_emit_no_selection_epochs() {
    let config = SimConfig::demo();
    let mut sink = CounterSink::default();
    run_mix_telemetry(&config, &mix(), &Scheme::Lru, INTERVAL, &mut sink);
    assert_eq!(sink.selection_epochs, 0);
    assert!(sink.llc_epochs > 0);
}

#[test]
fn jsonl_stream_round_trips_through_parser() {
    let config = SimConfig::demo();
    let mut sink = JsonlSink::new(Vec::new());
    let result = run_mix_telemetry(&config, &mix(), &nucache_short_epoch(), INTERVAL, &mut sink);
    let bytes = sink.finish().expect("in-memory writer cannot fail");
    let text = String::from_utf8(bytes).expect("jsonl is utf-8");

    let values = json::parse_jsonl(&text).expect("every line parses");
    let events: Vec<Event> = values
        .iter()
        .map(|v| Event::from_json(v).expect("every line decodes to an event"))
        .collect();

    assert!(matches!(events.first(), Some(Event::RunStart { .. })));
    match events.last() {
        Some(Event::RunEnd { totals, ipcs, .. }) => {
            assert_eq!(*totals, result.llc_totals);
            assert_eq!(*ipcs, result.ipcs());
        }
        other => panic!("stream must end with run_end, got {other:?}"),
    }
    assert!(
        events.iter().any(|e| matches!(e, Event::SelectionEpoch { .. })),
        "NUcache streams include selection epochs"
    );

    // The decoded events must re-encode to the identical stream.
    let rewritten: String = events.iter().map(|e| e.to_json().to_string_compact() + "\n").collect();
    assert_eq!(rewritten, text);
}
