//! Model checks for the sharded NUcache front-end's three concurrency
//! seams (`nucache_kernel::concurrent`), explored exhaustively under
//! the loom-lite interleaving explorer (preemption bound ≥ 2):
//!
//! 1. two request threads racing `get`/`put` on one shard: per-shard
//!    mutual exclusion keeps the shard's hit/len accounting coherent
//!    on every schedule,
//! 2. the deferred-epoch pump (lock + take, compute unlocked, lock +
//!    install) racing a reader: readers never observe a torn install,
//!    and exactly one pending snapshot is installed exactly once,
//! 3. poisoned-shard recovery: a request batch panicking under the
//!    shard lock poisons only that shard, and the next access recovers
//!    it via `PoisonError::into_inner`, counting the recovery.
//!
//! Like `interleave_seams.rs`, the models mirror the *shapes* in
//! `crates/kernel/src/concurrent.rs` but swap `std::sync` for the
//! interleave shims, so the assertions hold on every admitted
//! schedule, not just the ones the OS produces.

use nucache_common::interleave::{spawn, AtomicUsize, Explorer, Mutex, DEFAULT_PREEMPTION_BOUND};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};

/// One shard's mutable state, as the shard mutex guards it: the
/// resident map plus the hit counter `ConcurrentStats` aggregates.
#[derive(Default)]
struct ShardState {
    resident: BTreeMap<u64, u64>,
    hits: usize,
}

/// The `get`-then-`put` shape of a closed-loop request: look up under
/// the shard lock, and on a miss reacquire to insert (the loadgen
/// sleeps between the two, so they are separate critical sections).
fn serve(shard: &Mutex<ShardState>, key: u64) -> bool {
    let hit = {
        let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if s.resident.contains_key(&key) {
            s.hits += 1;
            true
        } else {
            false
        }
    };
    if !hit {
        let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
        s.resident.insert(key, key ^ 0xace);
    }
    hit
}

#[test]
fn racing_requests_keep_one_shard_coherent_on_every_schedule() {
    let stats = Explorer::with_bound(DEFAULT_PREEMPTION_BOUND).explore(|| {
        let shard = Arc::new(Mutex::new(ShardState::default()));
        let t1 = {
            let shard = Arc::clone(&shard);
            spawn(move || serve(&shard, 7))
        };
        let t2 = {
            let shard = Arc::clone(&shard);
            spawn(move || serve(&shard, 7))
        };
        let h1 = t1.join().expect("request 1 completes");
        let h2 = t2.join().expect("request 2 completes");
        let s = shard.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(s.resident.get(&7), Some(&(7 ^ 0xace)), "the key is resident after both");
        // Whoever lost the race may hit; the accounting must agree
        // with what the requests observed on this schedule.
        assert_eq!(s.hits, usize::from(h1) + usize::from(h2), "hit count matches observations");
        assert!(s.resident.len() == 1, "double insert is idempotent, never duplicated");
    });
    assert!(stats.schedules > 1, "the seam must actually branch: {stats:?}");
}

/// The deferred-epoch shape of one shard: `pending` is the snapshot
/// `epoch_tick` parks at the boundary, `installed` the generation the
/// readers consult (the `chosen` set in the kernel).
#[derive(Default)]
struct EpochShard {
    pending: Option<u64>,
    installed: Option<u64>,
    accesses: usize,
}

#[test]
fn epoch_pump_installs_once_and_readers_never_see_a_torn_install() {
    let stats = Explorer::with_bound(DEFAULT_PREEMPTION_BOUND).explore(|| {
        let shard = Arc::new(Mutex::new(EpochShard { pending: Some(41), ..Default::default() }));
        let installs = Arc::new(AtomicUsize::new(0));
        // The EpochThread shape: lock + take, compute unlocked,
        // relock + install.
        let pump = {
            let (shard, installs) = (Arc::clone(&shard), Arc::clone(&installs));
            spawn(move || {
                let taken = shard.lock().unwrap_or_else(PoisonError::into_inner).pending.take();
                if let Some(inputs) = taken {
                    let selection = inputs + 1; // compute() outside the lock
                    let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
                    s.installed = Some(selection);
                    installs.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        // A reader access between the take and the install sees either
        // the old chosen set (None) or the new one — never a torn mix.
        let reader = {
            let shard = Arc::clone(&shard);
            spawn(move || {
                let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
                s.accesses += 1;
                s.installed
            })
        };
        let seen = reader.join().expect("reader completes");
        pump.join().expect("pump completes");
        assert!(seen.is_none() || seen == Some(42), "no torn install is observable: {seen:?}");
        let s = shard.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(s.installed, Some(42), "the snapshot is installed after the pump");
        assert!(s.pending.is_none(), "take consumed the single pending slot");
        assert_eq!(installs.load(Ordering::SeqCst), 1, "exactly one install per snapshot");
        assert_eq!(s.accesses, 1, "the reader was never wedged by the pump");
    });
    assert!(stats.schedules > 1, "the seam must actually branch: {stats:?}");
}

#[test]
fn a_panicking_batch_poisons_one_shard_and_the_next_access_recovers_it() {
    let stats = Explorer::with_bound(DEFAULT_PREEMPTION_BOUND).explore(|| {
        let shard = Arc::new(Mutex::new(ShardState::default()));
        let recoveries = Arc::new(AtomicUsize::new(0));
        // The poisoning_probe shape: panic while the shard guard is
        // held, exactly what an injected batch fault does.
        let probe = {
            let shard = Arc::clone(&shard);
            spawn(move || {
                let _guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
                panic!("injected batch fault under the shard lock");
            })
        };
        // The lock_shard shape: recover a poisoned guard and count it.
        let survivor = {
            let (shard, recoveries) = (Arc::clone(&shard), Arc::clone(&recoveries));
            spawn(move || {
                let mut s = shard.lock().unwrap_or_else(|poisoned| {
                    recoveries.fetch_add(1, Ordering::SeqCst);
                    PoisonError::into_inner(poisoned)
                });
                s.resident.insert(3, 30);
                s.resident.len()
            })
        };
        assert!(probe.join().is_err(), "the probe's panic is consumed by join");
        let len = survivor.join().expect("the survivor is never wedged by poison");
        assert_eq!(len, 1, "the recovered shard serves the insert");
        // Recovery count depends on schedule (the survivor may win the
        // race and see a clean lock), but never exceeds one here.
        assert!(recoveries.load(Ordering::SeqCst) <= 1);
    });
    assert!(stats.schedules > 1, "the seam must actually branch: {stats:?}");
}
