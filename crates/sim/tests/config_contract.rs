//! Pins the baseline/default configurations to their named constants.
//!
//! DESIGN.md §10.1 and EXPERIMENTS.md bind their configuration tables to
//! these constants (`doc-constant-drift`), and this test binds the
//! constants to the actual `SimConfig::baseline` / `NuCacheConfig`
//! wiring — so a retuned default cannot silently diverge from either
//! the docs or the constant it is named after.

use nucache_cache::config::DEFAULT_BLOCK_BYTES;
use nucache_core::config::{
    DEFAULT_DELI_WAYS, DEFAULT_EPOCH_LEN, DEFAULT_HISTOGRAM_BUCKETS, DEFAULT_MAX_CANDIDATES,
    DEFAULT_MONITOR_DEPTH, DEFAULT_MONITOR_SHIFT, DEFAULT_ORACLE_POOL,
};
use nucache_core::NuCacheConfig;
use nucache_sim::config::{
    BASELINE_L1_BYTES, BASELINE_L1_WAYS, BASELINE_L2_BYTES, BASELINE_L2_WAYS,
    BASELINE_LLC_BYTES_PER_CORE, BASELINE_LLC_WAYS, BASELINE_MEASURE_ACCESSES, BASELINE_SEED,
    BASELINE_WARMUP_ACCESSES,
};
use nucache_sim::SimConfig;

#[test]
fn baseline_sim_config_uses_named_constants() {
    for cores in [1usize, 2, 4, 8] {
        let c = SimConfig::baseline(cores);
        assert_eq!(c.l1.size_bytes(), BASELINE_L1_BYTES);
        assert_eq!(c.l1.associativity(), BASELINE_L1_WAYS);
        assert_eq!(c.l2.size_bytes(), BASELINE_L2_BYTES);
        assert_eq!(c.l2.associativity(), BASELINE_L2_WAYS);
        assert_eq!(c.llc.size_bytes(), cores as u64 * BASELINE_LLC_BYTES_PER_CORE);
        assert_eq!(c.llc.associativity(), BASELINE_LLC_WAYS);
        for geom in [c.l1, c.l2, c.llc] {
            assert_eq!(geom.block_bytes(), DEFAULT_BLOCK_BYTES);
        }
        assert_eq!(c.warmup_accesses, BASELINE_WARMUP_ACCESSES);
        assert_eq!(c.measure_accesses, BASELINE_MEASURE_ACCESSES);
        assert_eq!(c.seed, BASELINE_SEED);
    }
}

/// The driver splits addresses at the trace crate's block granularity;
/// the cache geometries are built with their own block-bytes constant.
/// These are one physical quantity — if either constant is retuned
/// without the other, every line address the driver derives would be
/// sheared against the sets the caches index.
#[test]
fn trace_block_bits_match_cache_block_bytes() {
    assert_eq!(1u64 << nucache_trace::BLOCK_BITS, u64::from(DEFAULT_BLOCK_BYTES));
    assert_eq!(nucache_trace::BLOCK_BYTES, u64::from(DEFAULT_BLOCK_BYTES));
}

#[test]
fn default_nucache_config_uses_named_constants() {
    let nu = NuCacheConfig::default();
    assert_eq!(nu.deli_ways, DEFAULT_DELI_WAYS);
    assert_eq!(nu.epoch_len, DEFAULT_EPOCH_LEN);
    assert_eq!(nu.max_candidates, DEFAULT_MAX_CANDIDATES);
    assert_eq!(nu.oracle_pool, DEFAULT_ORACLE_POOL);
    assert_eq!(nu.monitor_shift, DEFAULT_MONITOR_SHIFT);
    assert_eq!(nu.monitor_depth, DEFAULT_MONITOR_DEPTH);
    assert_eq!(nu.histogram_buckets, DEFAULT_HISTOGRAM_BUCKETS);
    // The design point leaves half the 16-way LLC as MainWays.
    assert_eq!(BASELINE_LLC_WAYS - nu.deli_ways, 8);
}

/// The embeddable kernel's defaults are the same design point as the
/// simulator's: every shared policy knob of
/// [`nucache_kernel::KernelConfig::default`] must equal the
/// corresponding `DEFAULT_*` constant / [`NuCacheConfig`] default, and
/// its default geometry must be the baseline LLC way count. A library
/// embedder starting from `KernelConfig::default()` then gets exactly
/// the configuration the paper's results were reproduced with.
#[test]
fn kernel_defaults_match_simulator_design_point() {
    let k = nucache_kernel::KernelConfig::default();
    let nu = NuCacheConfig::default();
    assert_eq!(k.ways, BASELINE_LLC_WAYS);
    assert_eq!(k.deli_ways, DEFAULT_DELI_WAYS);
    assert_eq!(k.epoch_len, DEFAULT_EPOCH_LEN);
    assert_eq!(k.max_candidates, DEFAULT_MAX_CANDIDATES);
    assert_eq!(k.oracle_pool, DEFAULT_ORACLE_POOL);
    assert_eq!(k.monitor_shift, DEFAULT_MONITOR_SHIFT);
    assert_eq!(k.monitor_depth, DEFAULT_MONITOR_DEPTH);
    assert_eq!(k.histogram_buckets, DEFAULT_HISTOGRAM_BUCKETS);
    assert_eq!(k.promote_on_deli_hit, nu.promote_on_deli_hit);
    assert_eq!(k.deli_hit_refresh, nu.deli_hit_refresh);
    assert_eq!(k.strategy, nu.strategy);
    assert_eq!(k.seed, nu.seed);
    assert_eq!(k.sets, nucache_kernel::DEFAULT_SETS);
    assert_eq!(k.ways, nucache_kernel::DEFAULT_WAYS);
}

/// Lowering the simulator configuration to a kernel configuration is
/// field-faithful: `NuCacheConfig::to_kernel` plus the geometry equals
/// the kernel config the adapter runs on.
#[test]
fn to_kernel_lowering_is_field_faithful() {
    let nu = NuCacheConfig::default().with_deli_ways(4).with_epoch_len(777).with_seed(42);
    let k = nu.to_kernel(2048, BASELINE_LLC_WAYS);
    assert_eq!(k.sets, 2048);
    assert_eq!(k.ways, BASELINE_LLC_WAYS);
    assert_eq!(k.deli_ways, 4);
    assert_eq!(k.epoch_len, 777);
    assert_eq!(k.seed, 42);
    assert_eq!(k.max_candidates, nu.max_candidates);
    assert_eq!(k.oracle_pool, nu.oracle_pool);
    assert_eq!(k.monitor_shift, nu.monitor_shift);
    assert_eq!(k.monitor_depth, nu.monitor_depth);
    assert_eq!(k.histogram_buckets, nu.histogram_buckets);
    assert!(k.validate().is_ok());
}
