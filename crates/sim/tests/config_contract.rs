//! Pins the baseline/default configurations to their named constants.
//!
//! DESIGN.md §10.1 and EXPERIMENTS.md bind their configuration tables to
//! these constants (`doc-constant-drift`), and this test binds the
//! constants to the actual `SimConfig::baseline` / `NuCacheConfig`
//! wiring — so a retuned default cannot silently diverge from either
//! the docs or the constant it is named after.

use nucache_cache::config::DEFAULT_BLOCK_BYTES;
use nucache_core::config::{
    DEFAULT_DELI_WAYS, DEFAULT_EPOCH_LEN, DEFAULT_HISTOGRAM_BUCKETS, DEFAULT_MAX_CANDIDATES,
    DEFAULT_MONITOR_DEPTH, DEFAULT_MONITOR_SHIFT, DEFAULT_ORACLE_POOL,
};
use nucache_core::NuCacheConfig;
use nucache_sim::config::{
    BASELINE_L1_BYTES, BASELINE_L1_WAYS, BASELINE_L2_BYTES, BASELINE_L2_WAYS,
    BASELINE_LLC_BYTES_PER_CORE, BASELINE_LLC_WAYS, BASELINE_MEASURE_ACCESSES, BASELINE_SEED,
    BASELINE_WARMUP_ACCESSES,
};
use nucache_sim::SimConfig;

#[test]
fn baseline_sim_config_uses_named_constants() {
    for cores in [1usize, 2, 4, 8] {
        let c = SimConfig::baseline(cores);
        assert_eq!(c.l1.size_bytes(), BASELINE_L1_BYTES);
        assert_eq!(c.l1.associativity(), BASELINE_L1_WAYS);
        assert_eq!(c.l2.size_bytes(), BASELINE_L2_BYTES);
        assert_eq!(c.l2.associativity(), BASELINE_L2_WAYS);
        assert_eq!(c.llc.size_bytes(), cores as u64 * BASELINE_LLC_BYTES_PER_CORE);
        assert_eq!(c.llc.associativity(), BASELINE_LLC_WAYS);
        for geom in [c.l1, c.l2, c.llc] {
            assert_eq!(geom.block_bytes(), DEFAULT_BLOCK_BYTES);
        }
        assert_eq!(c.warmup_accesses, BASELINE_WARMUP_ACCESSES);
        assert_eq!(c.measure_accesses, BASELINE_MEASURE_ACCESSES);
        assert_eq!(c.seed, BASELINE_SEED);
    }
}

/// The driver splits addresses at the trace crate's block granularity;
/// the cache geometries are built with their own block-bytes constant.
/// These are one physical quantity — if either constant is retuned
/// without the other, every line address the driver derives would be
/// sheared against the sets the caches index.
#[test]
fn trace_block_bits_match_cache_block_bytes() {
    assert_eq!(1u64 << nucache_trace::BLOCK_BITS, u64::from(DEFAULT_BLOCK_BYTES));
    assert_eq!(nucache_trace::BLOCK_BYTES, u64::from(DEFAULT_BLOCK_BYTES));
}

#[test]
fn default_nucache_config_uses_named_constants() {
    let nu = NuCacheConfig::default();
    assert_eq!(nu.deli_ways, DEFAULT_DELI_WAYS);
    assert_eq!(nu.epoch_len, DEFAULT_EPOCH_LEN);
    assert_eq!(nu.max_candidates, DEFAULT_MAX_CANDIDATES);
    assert_eq!(nu.oracle_pool, DEFAULT_ORACLE_POOL);
    assert_eq!(nu.monitor_shift, DEFAULT_MONITOR_SHIFT);
    assert_eq!(nu.monitor_depth, DEFAULT_MONITOR_DEPTH);
    assert_eq!(nu.histogram_buckets, DEFAULT_HISTOGRAM_BUCKETS);
    // The design point leaves half the 16-way LLC as MainWays.
    assert_eq!(BASELINE_LLC_WAYS - nu.deli_ways, 8);
}
