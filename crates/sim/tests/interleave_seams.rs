//! Model checks for the runner's three concurrency seams, explored
//! exhaustively under the loom-lite interleaving explorer
//! (`nucache_common::interleave`, preemption bound ≥ 2):
//!
//! 1. the solo-cache memoization protocol (outer map lock handing out
//!    per-key cells, compute-once inside the cell) including recovery
//!    from a panic while the map lock is held,
//! 2. the `note_degradation` warn-once registry (`Once` + note vector),
//! 3. the `try_parallel_map` collection protocol (atomic cursor,
//!    per-slot mutexes, completion counter).
//!
//! The models mirror the shapes in `crates/sim/src/runner.rs` and
//! `telemetry.rs` but swap `std::sync` for the interleave shims, so
//! every assertion holds on *every* schedule the bound admits, not
//! just the ones the OS happens to produce.

use nucache_common::interleave::{
    spawn, AtomicUsize, Explorer, Mutex, Once, DEFAULT_PREEMPTION_BOUND,
};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};

/// The `SoloCache::cells` shape: the outer map lock handing out
/// per-key once-cells (modeled as `Mutex<Option<_>>`).
type CellMap = Mutex<BTreeMap<u32, Arc<Mutex<Option<u64>>>>>;

/// The memoization protocol of `SoloCache::get`: take the map lock
/// only long enough to hand out the per-key cell, then compute once
/// inside the cell. Returns the observed value and bumps `computes`
/// when this thread did the work.
fn memo_get(cache: &CellMap, computes: &AtomicUsize, key: u32) -> u64 {
    let cell = {
        let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_default())
    };
    let mut slot = cell.lock().unwrap_or_else(PoisonError::into_inner);
    if slot.is_none() {
        computes.fetch_add(1, Ordering::SeqCst);
        *slot = Some(u64::from(key) * 100 + 7);
    }
    slot.expect("cell filled above")
}

#[test]
fn solo_cache_memoization_computes_once_on_every_schedule() {
    let stats = Explorer::with_bound(DEFAULT_PREEMPTION_BOUND).explore(|| {
        let cache = Arc::new(Mutex::new(BTreeMap::new()));
        let computes = Arc::new(AtomicUsize::new(0));
        let (c1, n1) = (Arc::clone(&cache), Arc::clone(&computes));
        let (c2, n2) = (Arc::clone(&cache), Arc::clone(&computes));
        let t1 = spawn(move || memo_get(&c1, &n1, 3));
        let t2 = spawn(move || memo_get(&c2, &n2, 3));
        let v1 = t1.join().expect("worker 1 must not panic");
        let v2 = t2.join().expect("worker 2 must not panic");
        assert_eq!(v1, 307, "memoized value is the computed one");
        assert_eq!(v1, v2, "both threads observe the same result");
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "exactly one thread computes the shared key"
        );
    });
    assert!(stats.schedules > 1, "the seam must actually branch: {stats:?}");
}

#[test]
fn solo_cache_recovers_from_a_panic_under_the_map_lock() {
    let stats = Explorer::with_bound(DEFAULT_PREEMPTION_BOUND).explore(|| {
        let cache: Arc<CellMap> = Arc::new(Mutex::new(BTreeMap::new()));
        let computes = Arc::new(AtomicUsize::new(0));
        let poisoner = {
            let cache = Arc::clone(&cache);
            spawn(move || {
                let _guard = cache.lock().unwrap_or_else(PoisonError::into_inner);
                panic!("job died holding the map lock");
            })
        };
        let survivor = {
            let (cache, computes) = (Arc::clone(&cache), Arc::clone(&computes));
            spawn(move || memo_get(&cache, &computes, 9))
        };
        assert!(poisoner.join().is_err(), "the poisoning panic is consumed by join");
        let v = survivor.join().expect("the survivor must not be wedged by poison");
        assert_eq!(v, 907, "poison recovery yields the same value as a clean run");
        assert_eq!(computes.load(Ordering::SeqCst), 1);
    });
    assert!(stats.schedules > 1, "the seam must actually branch: {stats:?}");
}

#[test]
fn warn_once_registry_warns_exactly_once_and_drops_no_note() {
    let stats = Explorer::with_bound(DEFAULT_PREEMPTION_BOUND).explore(|| {
        let warned = Arc::new(AtomicUsize::new(0));
        let notes = Arc::new(Mutex::new(Vec::new()));
        let once = Arc::new(Once::new());
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let (warned, notes, once) =
                    (Arc::clone(&warned), Arc::clone(&notes), Arc::clone(&once));
                spawn(move || {
                    // The shape of telemetry::note_degradation: first
                    // note warns, every note lands in the registry.
                    once.call_once(|| {
                        warned.fetch_add(1, Ordering::SeqCst);
                    });
                    notes.lock().unwrap_or_else(PoisonError::into_inner).push(i);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("no worker panics");
        }
        assert_eq!(warned.load(Ordering::SeqCst), 1, "stderr warning fires exactly once");
        let mut recorded = notes.lock().unwrap_or_else(PoisonError::into_inner).clone();
        recorded.sort_unstable();
        assert_eq!(recorded, vec![0, 1], "every degradation note is recorded");
    });
    assert!(stats.schedules > 1, "the seam must actually branch: {stats:?}");
}

#[test]
fn parallel_map_collection_fills_every_slot_in_input_order() {
    let stats = Explorer::with_bound(DEFAULT_PREEMPTION_BOUND).explore(|| {
        let items: Arc<Vec<u64>> = Arc::new(vec![10, 20, 30]);
        let cursor = Arc::new(AtomicUsize::new(0));
        let slots: Arc<Vec<Mutex<Option<u64>>>> =
            Arc::new(items.iter().map(|_| Mutex::new(None)).collect());
        let completed = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (items, cursor, slots, completed) = (
                    Arc::clone(&items),
                    Arc::clone(&cursor),
                    Arc::clone(&slots),
                    Arc::clone(&completed),
                );
                spawn(move || loop {
                    // The shape of try_parallel_map's worker loop:
                    // claim a slot, fill it, publish completion.
                    let i = cursor.fetch_add(1, Ordering::SeqCst);
                    let Some(&item) = items.get(i) else { break };
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(item * 2);
                    completed.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("no worker panics");
        }
        assert_eq!(completed.load(Ordering::SeqCst), items.len(), "every job completes");
        let collected: Vec<u64> = slots
            .iter()
            .map(|s| {
                s.lock().unwrap_or_else(PoisonError::into_inner).expect("every slot is filled")
            })
            .collect();
        assert_eq!(collected, vec![20, 40, 60], "output stays in input order");
    });
    assert!(stats.schedules > 1, "the seam must actually branch: {stats:?}");
}
