//! The parallel runner must be a pure scheduling change: identical
//! results — bit for bit — at any worker count.

use nucache_sim::runner::Runner;
use nucache_sim::{Scheme, SimConfig};
use nucache_trace::{Mix, SpecWorkload};

fn demo_mixes() -> Vec<Mix> {
    vec![
        Mix::new("friendly", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]),
        Mix::new("contended", vec![SpecWorkload::McfLike, SpecWorkload::LibquantumLike]),
    ]
}

#[test]
fn grid_identical_at_one_and_eight_jobs() {
    let config = SimConfig::demo();
    let schemes = [Scheme::Lru, Scheme::Ucp, Scheme::nucache_default()];
    let mixes = demo_mixes();

    let serial = Runner::new(config).with_jobs(1).evaluate_grid(&mixes, &schemes);
    let parallel = Runner::new(config).with_jobs(8).evaluate_grid(&mixes, &schemes);

    assert_eq!(serial.len(), parallel.len());
    for (i, (row_s, row_p)) in serial.iter().zip(&parallel).enumerate() {
        for (j, ((rs, ms), (rp, mp))) in row_s.iter().zip(row_p).enumerate() {
            assert_eq!(rs, rp, "SimResult differs for mix {i} scheme {j}");
            // Normalized metrics must match to the last bit: the solo
            // cache may be filled by different threads but never with
            // different values.
            assert_eq!(
                ms.weighted_speedup.to_bits(),
                mp.weighted_speedup.to_bits(),
                "weighted speedup differs for mix {i} scheme {j}"
            );
            assert_eq!(ms.antt.to_bits(), mp.antt.to_bits(), "ANTT differs for mix {i} scheme {j}");
        }
    }
}

#[test]
fn run_jobs_preserves_submission_order() {
    let config = SimConfig::demo();
    let mixes = demo_mixes();
    let jobs: Vec<(Mix, Scheme)> = mixes
        .iter()
        .flat_map(|m| [(m.clone(), Scheme::Lru), (m.clone(), Scheme::nucache_default())])
        .collect();
    let results = Runner::new(config).with_jobs(8).run_jobs(&jobs);
    assert_eq!(results.len(), jobs.len());
    for ((mix, scheme), result) in jobs.iter().zip(&results) {
        assert_eq!(result.mix, mix.name(), "result out of order");
        assert_eq!(
            &result.scheme,
            &scheme.build(config.llc, config.num_cores, config.seed).scheme_name()
        );
    }
}

#[test]
fn solo_results_match_direct_runs() {
    let config = SimConfig::demo();
    let runner = Runner::new(config).with_jobs(4);
    for w in [SpecWorkload::HmmerLike, SpecWorkload::McfLike] {
        assert_eq!(runner.solo(w), nucache_sim::run_solo(&config, w));
    }
}
