//! End-to-end checks of the fault-tolerance layer: seeded fault
//! injection must exercise the degradation paths (isolated worker
//! panics, dropped telemetry streams) without ever changing a surviving
//! simulation result, and with injection disabled the machinery must be
//! invisible.
//!
//! Every runner here gets an explicit `with_fault_plan(...)` so the
//! tests are immune to any process-wide plan.

use nucache_common::fault::{FaultPlan, FaultSite};
use nucache_sim::telemetry::stream_path;
use nucache_sim::{JobPolicy, Runner, Scheme, SimConfig, TelemetrySpec};
use nucache_trace::{Mix, SpecWorkload};

fn config() -> SimConfig {
    SimConfig::demo().with_run_lengths(1_000, 4_000)
}

fn job_list(n: usize) -> Vec<(Mix, Scheme)> {
    (0..n)
        .map(|i| {
            let mix =
                Mix::new(format!("m{i}"), vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]);
            let scheme = if i % 2 == 0 { Scheme::Lru } else { Scheme::nucache_default() };
            (mix, scheme)
        })
        .collect()
}

/// No retries, no watchdog: failures surface immediately and the tests
/// stay fast.
fn quiet_policy() -> JobPolicy {
    JobPolicy { max_retries: 0, watchdog_secs: None }
}

/// Silences the default panic hook for the faults this suite injects on
/// purpose, forwarding every other panic unchanged.
fn quiet_injected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                prev(info);
            }
        }));
    });
}

#[test]
fn disabled_injection_and_policy_are_invisible() {
    let jobs = job_list(4);
    let base = Runner::new(config()).with_jobs(2).with_fault_plan(None).run_jobs(&jobs);
    // A different worker count, an aggressive retry budget and a live
    // watchdog must all be pure observation.
    let hardened = Runner::new(config())
        .with_jobs(3)
        .with_fault_plan(None)
        .with_policy(JobPolicy { max_retries: 3, watchdog_secs: Some(3_600) })
        .run_jobs(&jobs);
    assert_eq!(format!("{base:?}"), format!("{hardened:?}"));
}

#[test]
fn injected_worker_panics_isolate_jobs_deterministically() {
    quiet_injected_panics();
    let jobs = job_list(8);
    // A fresh runner numbers these jobs 0..8; pick a plan that fails
    // some but not all of them.
    let plan = (0..500)
        .map(FaultPlan::new)
        .find(|p| {
            let n = (0..8).filter(|&i| p.should_fault(FaultSite::WorkerPanic, i)).count();
            (1..8).contains(&n)
        })
        .expect("some small seed fails 1..8 of 8 jobs");
    let expected_failures: Vec<u64> =
        (0..8).filter(|&i| plan.should_fault(FaultSite::WorkerPanic, i)).collect();

    let runner = Runner::new(config())
        .with_jobs(3)
        .with_policy(JobPolicy { max_retries: 1, watchdog_secs: None })
        .with_fault_plan(Some(plan));
    let results = runner.try_run_jobs(&jobs);
    let clean = Runner::new(config()).with_jobs(2).with_fault_plan(None).run_jobs(&jobs);

    assert_eq!(results.len(), jobs.len());
    for (i, result) in results.iter().enumerate() {
        if expected_failures.contains(&(i as u64)) {
            let failure = result.as_ref().expect_err("planned fault must fail the job");
            assert_eq!(failure.index, i);
            assert_eq!(failure.attempts, 2, "deterministic faults fail the retry too");
            assert!(failure.message.contains("injected fault"), "{}", failure.message);
            assert!(failure.message.contains("worker-panic"), "{}", failure.message);
        } else {
            // Surviving jobs match a clean run exactly.
            assert_eq!(result.as_ref().ok(), Some(&clean[i]), "job {i} result drifted");
        }
    }

    // Failures land in the manifest registry, tagged per job.
    let marker = format!("plan seed {}", plan.seed());
    let recorded: Vec<_> = nucache_sim::take_failures()
        .into_iter()
        .filter(|f| f.stage == "job" && f.message.contains(&marker))
        .collect();
    assert_eq!(recorded.len(), expected_failures.len());
    for f in &recorded {
        assert!(f.job.is_some(), "job failures carry mix/scheme names");
        assert_eq!(f.attempts, 2);
    }

    // Same plan, fresh runner: bit-identical outcomes.
    let again = Runner::new(config())
        .with_jobs(5)
        .with_policy(JobPolicy { max_retries: 1, watchdog_secs: None })
        .with_fault_plan(Some(plan))
        .try_run_jobs(&jobs);
    assert_eq!(format!("{results:?}"), format!("{again:?}"));
}

#[test]
fn injected_telemetry_faults_degrade_without_changing_results() {
    let jobs = job_list(4);
    // Want: at least one stream-creation fault, at least one write fault
    // on a job whose creation succeeds, and no worker panics in 0..4.
    let plan = (0..5_000)
        .map(FaultPlan::new)
        .find(|p| {
            let create = |i| p.should_fault(FaultSite::TelemetryCreate, i);
            let write = |i| p.should_fault(FaultSite::TelemetryWrite, i);
            let panic = |i| p.should_fault(FaultSite::WorkerPanic, i);
            (0..4).any(create) && (0..4).any(|i| write(i) && !create(i)) && !(0..4).any(panic)
        })
        .expect("some small seed hits both telemetry sites without worker panics");

    let dir = std::env::temp_dir()
        .join("nucache_fault_injection_test")
        .join(format!("tele_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let spec = TelemetrySpec { dir: dir.clone(), snapshot_interval: 2_000 };

    let runner = Runner::new(config())
        .with_jobs(2)
        .with_policy(quiet_policy())
        .with_fault_plan(Some(plan))
        .with_telemetry(Some(spec));
    let results = runner.try_run_jobs(&jobs);

    // Telemetry faults never fail a job or change its result.
    let clean = Runner::new(config())
        .with_jobs(2)
        .with_fault_plan(None)
        .with_telemetry(None)
        .run_jobs(&jobs);
    for (i, result) in results.iter().enumerate() {
        assert_eq!(result.as_ref().ok(), Some(&clean[i]), "job {i} perturbed by telemetry fault");
    }

    // Faulted streams are absent (never created, or removed as partial);
    // healthy streams exist and are non-empty.
    for (i, (mix, scheme)) in jobs.iter().enumerate() {
        let path = stream_path(&dir, i, mix.name(), &scheme.name());
        let faulted = plan.should_fault(FaultSite::TelemetryCreate, i as u64)
            || plan.should_fault(FaultSite::TelemetryWrite, i as u64);
        if faulted {
            assert!(!path.exists(), "faulted stream {} must not survive", path.display());
        } else {
            let bytes = std::fs::read(&path).expect("healthy stream exists");
            assert!(!bytes.is_empty(), "healthy stream {} is empty", path.display());
        }
    }

    // Each degraded stream left a note for the manifest.
    let notes: Vec<String> = nucache_sim::take_degradations()
        .into_iter()
        .filter(|n| n.contains("telemetry stream") || n.contains("injected fault"))
        .collect();
    let degraded = (0..4)
        .filter(|&i| {
            plan.should_fault(FaultSite::TelemetryCreate, i)
                || plan.should_fault(FaultSite::TelemetryWrite, i)
        })
        .count();
    assert!(
        notes.len() >= degraded,
        "expected at least {degraded} degradation notes, got {notes:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
