//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of proptest this workspace uses: the
//! [`Strategy`] trait (ranges, tuples, `any`, `prop::collection::vec`,
//! `prop_map`), the `proptest!` macro with `#![proptest_config]`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name, overridable with
//! `PROPTEST_SEED`), and failing cases are *not* shrunk — the failing
//! input is printed as-is instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Test-runner configuration and deterministic RNG plumbing.
pub mod test_runner {
    use super::*;

    /// Subset of proptest's config: just the case count.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test RNG (seeded from the test name, or
    /// `PROPTEST_SEED` when set).
    #[derive(Debug)]
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        /// Builds the RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    // FNV-1a over the test name: stable across runs.
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                    h
                });
            TestRng { inner: StdRng::seed_from_u64(seed) }
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: std::fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: std::fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.inner.random::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner.random::<u64>() & 1 == 1
    }
}

/// Whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::bool`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        use rand::RngExt;

        /// Strategy producing `true` with probability `p`, mirroring
        /// `proptest::bool::weighted`.
        pub fn weighted(p: f64) -> Weighted {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
            Weighted { p }
        }

        /// Strategy returned by [`weighted`].
        #[derive(Debug, Clone, Copy)]
        pub struct Weighted {
            p: f64,
        }

        impl Strategy for Weighted {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.inner.random_bool(self.p)
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        use rand::RngExt;

        /// Element-count specification: an exact count or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        /// Strategy producing vectors of `element` draws.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec()`].
        #[derive(Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.inner.random_range(self.size.lo..=self.size.hi);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (plain `assert!` without
/// shrinking support).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!("case {}/{}" $(, ", ", stringify!($arg), " = {:?}")*),
                        __case + 1, __cfg.cases $(, &$arg)*
                    );
                    let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(e) = __outcome {
                        eprintln!("proptest failure in {}: {}", stringify!($name), __inputs);
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_sizes_respected() {
        let mut rng = crate::test_runner::TestRng::for_test("vec_sizes");
        let s = prop::collection::vec(0u64..10, 3..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = prop::collection::vec(0u64..10, 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::TestRng::for_test("map");
        let s = (1u64..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself works end to end.
        #[test]
        fn macro_roundtrip(x in 0u64..100, flags in prop::collection::vec(any::<bool>(), 1..4)) {
            prop_assert!(x < 100);
            prop_assert!(!flags.is_empty() && flags.len() < 4);
        }
    }
}
