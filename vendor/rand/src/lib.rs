//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the exact (small) API surface the workspace consumes:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt`
//! convenience methods (`random`, `random_range`, `random_bool`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a
//! high-quality deterministic PRNG. It is NOT the upstream `StdRng`
//! (ChaCha12), so absolute random streams differ from a crates.io build,
//! but every property the workspace relies on holds: identical seeds give
//! identical streams, distinct seeds give independent streams, and all
//! draws are uniform.

#![forbid(unsafe_code)]
#![no_std]

/// Random number generators.
pub mod rngs {
    /// Deterministic generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

/// Types that can be sampled uniformly from a generator.
pub trait Uniform: Sized {
    /// Draws one uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            #[inline]
            fn sample(rng: &mut StdRng) -> Self {
                rng.next() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next() & 1 == 1
    }
}

impl Uniform for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next() as $t);
                }
                lo + (rng.next() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, mirroring `rand::RngExt`.
pub trait RngExt {
    /// Uniform draw of any [`Uniform`] type (integers: full range;
    /// floats: `[0, 1)`).
    fn random<T: Uniform>(&mut self) -> T;

    /// Uniform draw from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for StdRng {
    #[inline]
    fn random<T: Uniform>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            // Consume a draw for stream parity with the open interval case.
            let _ = self.next();
            return true;
        }
        if p <= 0.0 {
            let _ = self.next();
            return false;
        }
        self.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: u64 = r.random_range(5u64..17);
            assert!((5..17).contains(&x));
            let y: usize = r.random_range(0usize..3);
            assert!(y < 3);
            let z: u64 = r.random_range(2u64..=4);
            assert!((2..=4).contains(&z));
        }
    }

    #[test]
    fn unit_floats() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
        let trues = (0..10_000).filter(|_| r.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
