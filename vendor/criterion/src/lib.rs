//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of criterion the bench suite uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `throughput`/`sample_size`/`bench_function`/`finish`, [`Bencher`] with
//! `iter`/`iter_batched_ref`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement is deliberately simple: a short warmup, then repeated timed
//! batches until the sample budget is met, reporting mean time per
//! iteration (and elements/sec when a throughput is set). There is no
//! statistical analysis, outlier rejection, or HTML report — the point is
//! that `cargo bench` runs offline and prints comparable numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Measurement backends (wall-clock only).
pub mod measurement {
    /// Wall-clock time measurement — the only backend provided.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Work-per-iteration declaration used to derive rate figures.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How `iter_batched_ref` amortizes setup cost (accepted for API
/// compatibility; every batch size runs setup once per iteration here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh setup on every iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { total: Duration::ZERO, iters: 0 };

        // Warmup: one untimed sample so lazy init / cache warming doesn't
        // pollute the measurement.
        f(&mut bencher);
        bencher.total = Duration::ZERO;
        bencher.iters = 0;

        for _ in 0..self.sample_size {
            f(&mut bencher);
        }

        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iters as f64
        };
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!("{:>12.0} elem/s", n as f64 * 1e9 / mean_ns),
            Throughput::Bytes(n) => format!("{:>12.0} B/s", n as f64 * 1e9 / mean_ns),
        });
        match rate {
            Some(r) => println!("bench {}/{:<40} {:>14.1} ns/iter {}", self.name, id, mean_ns, r),
            None => println!("bench {}/{:<40} {:>14.1} ns/iter", self.name, id, mean_ns),
        }
    }

    /// Ends the group (no-op; reporting happens per benchmark).
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

/// Iteration count per timed sample, kept small so `cargo bench` finishes
/// quickly even for whole-simulation benches.
const ITERS_PER_SAMPLE: u64 = 3;

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS_PER_SAMPLE {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += ITERS_PER_SAMPLE;
    }

    /// Times `routine` against state rebuilt by `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched_ref<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> R,
    {
        for _ in 0..ITERS_PER_SAMPLE {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.total += start.elapsed();
            drop(input);
        }
        self.iters += ITERS_PER_SAMPLE;
    }
}

/// Declares a group runner: `criterion_group!(benches, f1, f2)` defines
/// `pub fn benches()` invoking each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main()` running each `criterion_group!` in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        // warmup sample + 2 timed samples, ITERS_PER_SAMPLE iterations each
        assert_eq!(runs, 3 * ITERS_PER_SAMPLE);
    }

    #[test]
    fn iter_batched_ref_rebuilds_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("batched");
        group.sample_size(2);
        let mut setups = 0u64;
        group.bench_function("rebuild", |b| {
            b.iter_batched_ref(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert_eq!(setups, 3 * ITERS_PER_SAMPLE);
    }
}
