//! Property-based tests of cross-crate structural invariants.

use nucache_repro::cache::policy::Lru;
use nucache_repro::cache::{BasicCache, CacheGeometry, SharedLlc};
use nucache_repro::common::{AccessKind, CoreId, LineAddr, Log2Histogram, Pc};
use nucache_repro::core::{NuCache, NuCacheConfig};
use nucache_repro::partition::{lookahead_partition, PippLlc, UcpLlc};
use proptest::prelude::*;

/// A compact random access trace: (line, is_write, core) triples.
fn trace_strategy(max_line: u64, cores: u8) -> impl Strategy<Value = Vec<(u64, bool, u8)>> {
    prop::collection::vec((0..max_line, any::<bool>(), 0..cores), 1..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// LRU stack-inclusion property: every hit observed with W ways is
    /// also a hit with W+1 ways (on the same set count).
    #[test]
    fn lru_stack_inclusion(trace in trace_strategy(256, 1)) {
        let small = CacheGeometry::new(64 * 4 * 8, 4, 64); // 8 sets, 4-way
        let big = CacheGeometry::new(64 * 8 * 8, 8, 64); // 8 sets, 8-way
        let mut c_small = BasicCache::new(small, Lru::new(&small));
        let mut c_big = BasicCache::new(big, Lru::new(&big));
        for (line, w, _) in &trace {
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            let hit_small =
                c_small.access(LineAddr::new(*line), kind, CoreId::new(0), Pc::new(0)).is_hit();
            let hit_big =
                c_big.access(LineAddr::new(*line), kind, CoreId::new(0), Pc::new(0)).is_hit();
            prop_assert!(!hit_small || hit_big, "hit in 4-way but miss in 8-way");
        }
    }

    /// Any cache's occupancy never exceeds its capacity, and a line that
    /// was just accessed is resident.
    #[test]
    fn capacity_and_residency(trace in trace_strategy(512, 1)) {
        let geom = CacheGeometry::new(64 * 4 * 4, 4, 64); // 4 sets, 4-way
        let mut cache = BasicCache::new(geom, Lru::new(&geom));
        for (line, w, _) in &trace {
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            cache.access(LineAddr::new(*line), kind, CoreId::new(0), Pc::new(0));
            prop_assert!(cache.occupancy() <= geom.num_lines());
            prop_assert!(cache.probe(LineAddr::new(*line)), "just-accessed line absent");
        }
    }

    /// NUcache conserves capacity and never reports more hits than
    /// accesses, for any deli/main split and any trace.
    #[test]
    fn nucache_structural_invariants(
        trace in trace_strategy(512, 2),
        deli in 1usize..7,
    ) {
        let geom = CacheGeometry::new(64 * 8 * 8, 8, 64); // 8 sets, 8-way
        let mut config = NuCacheConfig::default().with_deli_ways(deli).with_epoch_len(50);
        config.monitor_shift = 0;
        let mut llc = NuCache::new(geom, 2, config);
        for (line, w, core) in &trace {
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            // Pseudo-PCs derived from the line so selection has structure.
            let pc = Pc::new(0x400 + (line % 4) * 8);
            llc.access(CoreId::new(*core), pc, LineAddr::new(*line), kind);
            let hit = llc.access(CoreId::new(*core), pc, LineAddr::new(*line), kind);
            prop_assert!(hit.is_hit(), "immediate re-access must hit");
        }
        let s = llc.stats();
        prop_assert!(s.hits + s.misses == s.accesses());
        prop_assert!(llc.deli_hits() <= s.hits);
        let core_total: u64 = llc.core_stats().iter().map(|c| c.accesses()).sum();
        prop_assert_eq!(core_total, s.accesses());
    }

    /// UCP and PIPP keep per-core attribution consistent with totals.
    #[test]
    fn partition_schemes_account_consistently(trace in trace_strategy(512, 2)) {
        let geom = CacheGeometry::new(64 * 8 * 8, 8, 64);
        let mut ucp = UcpLlc::new(geom, 2, 100);
        let mut pipp = PippLlc::new(geom, 2, 100, 3);
        for (line, w, core) in &trace {
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            ucp.access(CoreId::new(*core), Pc::new(1), LineAddr::new(*line), kind);
            pipp.access(CoreId::new(*core), Pc::new(1), LineAddr::new(*line), kind);
        }
        for llc in [&ucp as &dyn SharedLlc, &pipp as &dyn SharedLlc] {
            let total: u64 = llc.core_stats().iter().map(|c| c.accesses()).sum();
            prop_assert_eq!(total, llc.stats().accesses());
        }
        prop_assert_eq!(ucp.allocations().iter().sum::<usize>(), 8);
        prop_assert_eq!(pipp.allocations().iter().sum::<usize>(), 8);
    }

    /// The lookahead partition always assigns exactly the associativity,
    /// with the floor respected, for arbitrary monotone curves.
    #[test]
    fn lookahead_total_and_floor(
        raw in prop::collection::vec(prop::collection::vec(0u64..1000, 17), 1..8),
    ) {
        // Make each curve monotone by prefix summation.
        let curves: Vec<Vec<u64>> = raw
            .iter()
            .map(|v| {
                v.iter()
                    .scan(0u64, |acc, x| {
                        *acc += x;
                        Some(*acc)
                    })
                    .collect()
            })
            .collect();
        let cores = curves.len();
        if cores <= 16 {
            let alloc = lookahead_partition(&curves, 16, 1);
            prop_assert_eq!(alloc.iter().sum::<usize>(), 16);
            prop_assert!(alloc.iter().all(|&a| a >= 1));
        }
    }

    /// Histogram mass conservation: total equals the number of records,
    /// and count_le is monotone in the threshold.
    #[test]
    fn histogram_mass_and_monotonicity(samples in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut h = Log2Histogram::new(32);
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let mut prev = 0;
        for t in [0u64, 1, 10, 100, 1_000, 10_000, 100_000, u64::MAX] {
            let c = h.count_le(t);
            prop_assert!(c >= prev, "count_le must be monotone");
            prop_assert!(c <= h.total());
            prev = c;
        }
    }

    /// The Next-Use monitor never reports a distance for a line it was
    /// not told about, and distances match a brute-force reference.
    #[test]
    fn monitor_matches_bruteforce(evictions in prop::collection::vec((0u64..16, 0u64..4), 1..100)) {
        use nucache_repro::core::NextUseMonitor;
        let set_bits = 2; // 4 sets
        let mut monitor = NextUseMonitor::new(set_bits, 0, 64, 24);
        // Brute-force reference: (line, clock_at_eviction) map per set.
        let mut reference: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut clocks = [0u64; 4];
        for (i, &(tag, set)) in evictions.iter().enumerate() {
            let line = LineAddr::new((tag << set_bits) | set);
            let pc = Pc::new(i as u64);
            // Interleave: an access, an eviction, an access, a next-use probe.
            monitor.on_set_access(line.0);
            clocks[set as usize] += 1;
            monitor.on_evict(line.0, pc);
            reference.insert(line.0, clocks[set as usize]);
            monitor.on_set_access(line.0);
            clocks[set as usize] += 1;
            if let Some((_, d)) = monitor.on_next_use(line.0) {
                let expected = clocks[set as usize] - reference[&line.0];
                prop_assert_eq!(d, expected);
            }
        }
    }
}

/// Silences the default panic hook for the panics this suite injects on
/// purpose (hundreds of them across proptest cases), while forwarding
/// every other panic to the previous hook unchanged.
fn quiet_injected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected test panic") {
                prev(info);
            }
        }));
    });
}

/// The parallel runner is an optimization, not a semantic change: a
/// serial run (`--jobs 1`) and any worker count must produce
/// byte-identical results for the same job list. `Debug` formatting
/// captures every field of every result, so string equality is the
/// strongest cheap proxy for bit-identity.
#[test]
fn runner_output_is_identical_at_any_job_count() {
    use nucache_repro::sim::{Runner, Scheme, SimConfig};
    use nucache_repro::trace::{Mix, SpecWorkload};

    let config = SimConfig::demo().with_run_lengths(2_000, 10_000);
    let jobs: Vec<(Mix, Scheme)> = [Scheme::Lru, Scheme::nucache_default(), Scheme::Ucp]
        .into_iter()
        .map(|s| (Mix::new("det", vec![SpecWorkload::HmmerLike, SpecWorkload::McfLike]), s))
        .collect();

    let serial = Runner::new(config).with_jobs(1).run_jobs(&jobs);
    let reference = format!("{serial:?}");
    for workers in [2, 4, 7] {
        let parallel = Runner::new(config).with_jobs(workers).run_jobs(&jobs);
        assert_eq!(
            reference,
            format!("{parallel:?}"),
            "results diverged between --jobs 1 and --jobs {workers}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Panic isolation in the fault-tolerant runner core: for any mix of
    /// healthy and panicking jobs, any worker count and any retry
    /// budget, `try_parallel_map` still returns a slot for every item in
    /// input order — healthy items carry exactly the value a serial run
    /// produces, panicking items carry their own index, the exhausted
    /// attempt count and the panic message.
    #[test]
    fn try_parallel_map_isolates_injected_panics(
        items in prop::collection::vec((0u64..1000, prop::bool::weighted(0.25)), 0..40),
        workers in 1usize..9,
        retries in 0u32..3,
    ) {
        use nucache_repro::sim::{try_parallel_map, JobFailure, JobPolicy, ParallelReport, StuckJob};

        quiet_injected_panics();
        let policy = JobPolicy { max_retries: retries, watchdog_secs: None };
        let f = |&(value, poisoned): &(u64, bool)| {
            assert!(!poisoned, "injected test panic on {value}");
            value.wrapping_mul(3) ^ 1
        };
        let report: ParallelReport<u64> = try_parallel_map(workers, &items, &policy, f);
        let stuck: &[StuckJob] = &report.stuck;
        prop_assert!(stuck.is_empty(), "no watchdog, no flags: {stuck:?}");
        prop_assert_eq!(report.results.len(), items.len());
        for (i, ((value, poisoned), result)) in items.iter().zip(&report.results).enumerate() {
            if *poisoned {
                let failure: &JobFailure = result.as_ref().expect_err("poisoned items must fail");
                prop_assert_eq!(failure.index, i);
                prop_assert_eq!(failure.attempts, u64::from(retries) + 1);
                prop_assert!(
                    failure.message.contains("injected test panic"),
                    "unexpected message: {}", failure.message
                );
            } else {
                prop_assert_eq!(result.as_ref().ok(), Some(&(value.wrapping_mul(3) ^ 1)));
            }
        }
        // The parallel report must agree with a fully serial run.
        let serial = try_parallel_map(1, &items, &policy, f);
        prop_assert_eq!(&report.results, &serial.results);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Same property under random seeds, core counts and worker counts:
    /// the worker pool must never leak into simulation results.
    #[test]
    fn runner_determinism_under_random_configs(
        seed in any::<u64>(),
        cores in 1usize..4,
        workers in 2usize..9,
    ) {
        use nucache_repro::sim::{Runner, Scheme, SimConfig};
        use nucache_repro::trace::{Mix, SpecWorkload};

        let config = SimConfig::demo()
            .with_cores(cores)
            .with_seed(seed)
            .with_run_lengths(1_000, 5_000);
        let mix = Mix::new("rand", vec![SpecWorkload::GobmkLike; cores]);
        let jobs = vec![(mix.clone(), Scheme::Lru), (mix, Scheme::nucache_default())];
        let serial = Runner::new(config).with_jobs(1).run_jobs(&jobs);
        let parallel = Runner::new(config).with_jobs(workers).run_jobs(&jobs);
        prop_assert_eq!(format!("{:?}", serial), format!("{:?}", parallel));
    }
}
