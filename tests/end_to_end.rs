//! End-to-end integration tests: full simulations across every crate.

use nucache_repro::sim::{run_mix, run_mix_nucache, Evaluator, Scheme, SimConfig};
use nucache_repro::trace::{Mix, SpecWorkload};

/// A small-but-real configuration: contention happens, runs stay fast.
fn test_config(cores: usize) -> SimConfig {
    SimConfig::baseline(cores).with_run_lengths(50_000, 150_000)
}

#[test]
fn every_headline_scheme_completes_a_dual_core_mix() {
    let config = test_config(2);
    let mix = Mix::new("it", vec![SpecWorkload::SphinxLike, SpecWorkload::LibquantumLike]);
    for scheme in Scheme::headline_suite() {
        let r = run_mix(&config, &mix, &scheme);
        assert_eq!(r.per_core.len(), 2, "{scheme}");
        assert!(r.per_core.iter().all(|c| c.ipc > 0.0), "{scheme}");
        assert!(r.llc_totals.accesses() > 0, "{scheme}");
    }
}

#[test]
fn results_are_bit_identical_across_runs() {
    let config = test_config(2);
    let mix = Mix::new("det", vec![SpecWorkload::McfLike, SpecWorkload::MilcLike]);
    for scheme in [Scheme::Lru, Scheme::Pipp, Scheme::nucache_default()] {
        let a = run_mix(&config, &mix, &scheme);
        let b = run_mix(&config, &mix, &scheme);
        assert_eq!(a, b, "{scheme} must be deterministic");
    }
}

#[test]
fn nucache_beats_lru_on_retention_sensitive_mix() {
    // The flagship scenario: a retention-sensitive loop application
    // co-running with an intense streamer. Shared LRU lets the stream
    // flush the loop; NUcache must recover most of it.
    let config = test_config(2);
    let mut eval = Evaluator::new(config);
    let mix = Mix::new("flagship", vec![SpecWorkload::SphinxLike, SpecWorkload::LibquantumLike]);
    let (_, lru) = eval.evaluate(&mix, &Scheme::Lru);
    let (_, nuc) = eval.evaluate(&mix, &Scheme::nucache_default());
    assert!(
        nuc.weighted_speedup > lru.weighted_speedup * 1.10,
        "NUcache {} vs LRU {}: expected >10% improvement",
        nuc.weighted_speedup,
        lru.weighted_speedup
    );
}

#[test]
fn nucache_never_collapses_on_friendly_mixes() {
    // Cache-friendly co-runners leave nothing for NUcache to improve; it
    // must not lose more than a sliver to its reserved DeliWays.
    let config = test_config(2);
    let mut eval = Evaluator::new(config);
    let mix = Mix::new("friendly", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]);
    let (_, lru) = eval.evaluate(&mix, &Scheme::Lru);
    let (_, nuc) = eval.evaluate(&mix, &Scheme::nucache_default());
    assert!(
        nuc.weighted_speedup > lru.weighted_speedup * 0.95,
        "NUcache {} vs LRU {}: must stay within 5%",
        nuc.weighted_speedup,
        lru.weighted_speedup
    );
}

#[test]
fn nucache_internals_are_active_in_a_real_mix() {
    let config = test_config(2);
    let mix = Mix::new("internals", vec![SpecWorkload::SphinxLike, SpecWorkload::LbmLike]);
    let (result, llc) =
        run_mix_nucache(&config, &mix, nucache_repro::core::NuCacheConfig::default());
    assert!(llc.epochs() > 0, "selection must have run");
    assert!(llc.deli_fills() > 0, "DeliWays must be used");
    assert!(llc.deli_hits() > 0, "DeliWays must produce hits");
    assert!(!llc.tracker().is_empty());
    assert!(result.llc_totals.hits > 0);
}

#[test]
fn weighted_speedup_bounded_by_core_count() {
    let config = test_config(4);
    let mut eval = Evaluator::new(config);
    let mix = Mix::new(
        "bound",
        vec![
            SpecWorkload::GccLike,
            SpecWorkload::Bzip2Like,
            SpecWorkload::SjengLike,
            SpecWorkload::GobmkLike,
        ],
    );
    for scheme in Scheme::headline_suite() {
        let (_, m) = eval.evaluate(&mix, &scheme);
        assert!(
            m.weighted_speedup <= 4.0 * 1.05,
            "{scheme}: ws {} exceeds core count",
            m.weighted_speedup
        );
        assert!(m.antt >= 0.95, "{scheme}: antt {} below 1 is implausible", m.antt);
    }
}

#[test]
fn ucp_protects_the_reuser_better_than_lru() {
    let config = test_config(2);
    let mut eval = Evaluator::new(config);
    let mix = Mix::new("ucp_it", vec![SpecWorkload::SoplexLike, SpecWorkload::LbmLike]);
    let (_, lru) = eval.evaluate(&mix, &Scheme::Lru);
    let (_, ucp) = eval.evaluate(&mix, &Scheme::Ucp);
    assert!(
        ucp.per_core_speedup[0] >= lru.per_core_speedup[0] * 0.98,
        "UCP must not hurt the reuser: {} vs {}",
        ucp.per_core_speedup[0],
        lru.per_core_speedup[0]
    );
}

#[test]
fn eight_core_mix_runs_under_every_scheme() {
    let config = SimConfig::baseline(8).with_run_lengths(20_000, 60_000);
    let mix = Mix::eight_core_suite().remove(0);
    for scheme in Scheme::headline_suite() {
        let r = run_mix(&config, &mix, &scheme);
        assert_eq!(r.per_core.len(), 8, "{scheme}");
        assert!(r.per_core.iter().all(|c| c.cycles > 0), "{scheme}");
    }
}

#[test]
fn solo_ipc_independent_of_co_runner_seeding() {
    // The evaluator's cached solo runs must match a direct solo run.
    let config = test_config(2);
    let mut eval = Evaluator::new(config);
    let direct = nucache_repro::sim::run_solo(&config, SpecWorkload::AstarLike);
    let cached = eval.solo(SpecWorkload::AstarLike);
    assert_eq!(cached.ipc, direct.ipc);
}
