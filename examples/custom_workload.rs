//! Author a custom phased workload with the builder API and inspect the
//! Next-Use structure NUcache sees.
//!
//! Run with: `cargo run --release --example custom_workload`

use nucache_repro::cache::hierarchy::{PrivateHierarchy, PrivateOutcome};
use nucache_repro::cache::{CacheGeometry, SharedLlc};
use nucache_repro::common::table::Table;
use nucache_repro::common::{AccessKind, CoreId};
use nucache_repro::core::{NuCache, NuCacheConfig};
use nucache_repro::trace::{Behavior, Phase, SiteSpec, TraceGen, TraceSummary, WorkloadSpec};

fn main() {
    // A two-phase application: a build phase streaming an input while
    // updating a medium table, then a query phase hammering the table
    // with random probes.
    let table_lines = 10_000;
    let build = Phase {
        sites: vec![
            SiteSpec::new(Behavior::Stream { lines: 200_000, stride: 1 }, 50),
            SiteSpec::new(Behavior::Loop { lines: table_lines }, 50).with_writes(0.6),
        ],
        accesses: 150_000,
    };
    let query = Phase {
        sites: vec![
            SiteSpec::new(Behavior::RandomUniform { lines: table_lines }, 80),
            SiteSpec::new(Behavior::Loop { lines: 256 }, 20),
        ],
        accesses: 150_000,
    };
    let spec = WorkloadSpec::phased("build_then_query", vec![build, query], (2, 6));

    // Characterize the raw trace.
    let core = CoreId::new(0);
    let summary = TraceSummary::from_accesses(TraceGen::new(&spec, core, 7).take(300_000));
    println!("workload: {}", spec.name);
    println!("  accesses:        {}", summary.accesses);
    println!("  footprint:       {:.1} MiB", summary.footprint_bytes() as f64 / (1 << 20) as f64);
    println!("  intensity:       {:.1} accesses/kilo-instruction", summary.apki());
    println!("  top-2 PCs cover: {:.0}% of accesses\n", summary.top_pc_coverage(2) * 100.0);

    // Drive it through a private hierarchy into an instrumented NUcache.
    let mut nucache_config = NuCacheConfig::default().with_epoch_len(25_000);
    nucache_config.monitor_shift = 0; // observe every set for the demo
    let llc_geom = CacheGeometry::new(1024 * 1024, 16, 64);
    let mut llc = NuCache::new(llc_geom, 1, nucache_config);
    let mut hierarchy = PrivateHierarchy::new(
        core,
        CacheGeometry::new(32 * 1024, 8, 64),
        CacheGeometry::new(256 * 1024, 8, 64),
    );
    for a in TraceGen::new(&spec, core, 7).take(900_000) {
        if let PrivateOutcome::LlcAccess { writeback } =
            hierarchy.access(a.pc, a.addr.line(6), a.kind)
        {
            if let Some(wb) = writeback {
                llc.access(core, a.pc, wb, AccessKind::Write);
            }
            llc.access(core, a.pc, a.addr.line(6), a.kind);
        }
    }

    println!("after 900k accesses through L1/L2 into a 1MiB NUcache LLC:");
    println!("  LLC: {}", llc.stats());
    println!("  DeliWays hits: {}\n", llc.deli_hits());

    let mut t = Table::new(["delinquent_pc", "misses", "next_use_p50 (set-accesses)"]);
    for (pc, misses) in llc.tracker().top_k(5) {
        let p50 = llc
            .monitor()
            .histogram(pc)
            .and_then(|h| h.quantile(0.5))
            .map_or("-".to_string(), |q| q.to_string());
        t.row([format!("{pc}"), misses.to_string(), p50]);
    }
    print!("{}", t.to_text());
    println!("\nchosen PCs this epoch: {:?}", llc.chosen_pcs());
}
