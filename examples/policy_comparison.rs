//! Compare replacement policies on a single thrash-prone workload.
//!
//! Demonstrates the cache substrate on its own: the same access stream is
//! replayed against LRU, FIFO, random, PLRU, DIP, DRRIP and NUcache, and
//! the hit rates are tabulated. The workload is the classic mixed
//! pattern that separates the policies: a reusable loop slightly larger
//! than the LRU reach, plus a polluting scan.
//!
//! Run with: `cargo run --release --example policy_comparison`

use nucache_repro::cache::policy::{Dip, Drrip, Fifo, Lru, RandomEvict, TreePlru};
use nucache_repro::cache::{BasicCache, CacheGeometry, ReplacementPolicy, SharedLlc};
use nucache_repro::common::table::{f2, Table};
use nucache_repro::common::{AccessKind, CoreId, LineAddr, Pc};
use nucache_repro::core::{NuCache, NuCacheConfig};

/// The shared access pattern: a reusable loop of 6 lines per set buried
/// under twice as much scan traffic. Per-set reuse distance is ~18 —
/// beyond the 16-way LRU reach (thrash) but within NUcache's DeliWays
/// retention (8-deep FIFO fed only by the loop PC).
fn drive(mut touch: impl FnMut(LineAddr, Pc)) {
    let geom_sets = 256u64;
    let loop_lines = 6 * geom_sets;
    let loop_pc = Pc::new(0x100);
    let scan_pc = Pc::new(0x200);
    let mut scan = 1 << 30;
    for round in 0..600_000u64 {
        touch(LineAddr::new(round % loop_lines), loop_pc);
        for _ in 0..2 {
            touch(LineAddr::new(scan), scan_pc);
            scan += 1;
        }
    }
}

fn run_policy<P: ReplacementPolicy>(geom: CacheGeometry, policy: P) -> (String, f64) {
    let mut cache = BasicCache::new(geom, policy);
    drive(|line, pc| {
        cache.access(line, AccessKind::Read, CoreId::new(0), pc);
    });
    (cache.policy().name().to_string(), cache.stats().hit_rate())
}

fn main() {
    // 256 KiB, 16-way (256 sets): the loop's reuse distance exceeds the
    // LRU reach because of the interleaved scans.
    let geom = CacheGeometry::new(256 * 1024, 16, 64);
    let mut rows: Vec<(String, f64)> = vec![
        run_policy(geom, Lru::new(&geom)),
        run_policy(geom, Fifo::new(&geom)),
        run_policy(geom, RandomEvict::new(&geom, 1)),
        run_policy(geom, TreePlru::new(&geom)),
        run_policy(geom, Dip::new(&geom, 1)),
        run_policy(geom, Drrip::new(&geom, 1)),
    ];

    // NUcache with 8 of 16 ways as DeliWays and a fast epoch.
    let config = NuCacheConfig::default().with_deli_ways(8).with_epoch_len(20_000);
    let mut nucache = NuCache::new(geom, 1, config);
    drive(|line, pc| {
        nucache.access(CoreId::new(0), pc, line, AccessKind::Read);
    });
    rows.push((nucache.scheme_name(), nucache.stats().hit_rate()));

    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut t = Table::new(["policy", "hit_rate"]);
    for (name, hit_rate) in &rows {
        t.row([name.clone(), f2(hit_rate * 100.0) + "%"]);
    }
    println!("loop (reuse distance ~1.1x LRU reach) + heavy scan, 256KiB/16-way:\n");
    print!("{}", t.to_text());
    println!("\nLRU thrashes; thrash-resistant policies keep part of the loop;");
    println!("NUcache retains the loop PC's lines in its DeliWays.");
}
