//! Quickstart for the embeddable `nucache-kernel` library: a software
//! cache with two insertion classes, one reusable and one streaming,
//! and the epoch selector learning to retain only the reusable one.
//!
//! Run with: `cargo run --release --example kernel_quickstart`

use nucache_kernel::{InsertionClass, KernelConfig, Lookup, NucacheKernel};

fn main() {
    // 256 sets x 8 ways; 4 ways per set form the DeliWays, which
    // retain evictions of the currently chosen classes. A short epoch
    // and an unsampled monitor make the demo converge in seconds.
    let mut config = KernelConfig::default()
        .with_sets(256)
        .with_ways(8)
        .with_deli_ways(4)
        .with_epoch_len(20_000);
    config.monitor_shift = 0; // observe every set (demo-sized cache)
    let mut cache: NucacheKernel<Payload> = NucacheKernel::init(config).expect("config is valid");

    // Classify insertions by their source. Here: a tenant whose working
    // set loops (near Next-Use distances — retention pays off) and a
    // tenant running a scan (every key is touched once — retention is
    // pure pollution).
    let loop_tenant = InsertionClass::new(1);
    let scan_tenant = InsertionClass::new(2);

    // The looping working set: 6 entries per set — larger than the
    // 4 MainWays (so plain LRU thrashes: a cyclic loop one entry over
    // capacity misses every time), comfortably within MainWays +
    // DeliWays once the loop tenant is chosen.
    let loop_keys = 6 * 256u64;
    let mut scan_key = 1 << 32;
    let mut loop_hits = 0u64;
    let mut loop_lookups = 0u64;

    println!("driving a looping tenant against a scanning tenant...\n");
    for round in 0..600_000u64 {
        let key = round % loop_keys;
        loop_lookups += 1;
        // `get` is the read path: it records the access for selection
        // and returns a mutable borrow on hit, allocating nothing.
        match cache.get(key, loop_tenant) {
            Lookup::Hit { value, .. } => {
                value.touches += 1;
                loop_hits += 1;
            }
            Lookup::Miss => {
                // The kernel never fetches; the caller decides what a
                // miss costs and whether to insert (demand fill here).
                cache.put(key, loop_tenant, Payload::fetch(key));
            }
        }

        // The scan touches every key exactly once.
        if round % 2 == 0 {
            if cache.get(scan_key, scan_tenant).is_hit() {
                unreachable!("scan keys are never revisited");
            }
            cache.put(scan_key, scan_tenant, Payload::fetch(scan_key));
            scan_key += 1;
        }
    }

    // `remove` invalidates a key wherever it is resident.
    cache.remove(0);

    println!("epochs completed:       {}", cache.epochs());
    println!("chosen classes:         {:?}", cache.chosen_classes());
    println!("DeliWays fills / hits:  {} / {}", cache.deli_fills(), cache.deli_hits());
    println!("loop-tenant hit rate:   {:.1}%", 100.0 * loop_hits as f64 / loop_lookups as f64);
    println!("overall hits / misses:  {} / {}", cache.hits(), cache.misses());
    println!();

    let chosen = cache.chosen_classes();
    if chosen.contains(&loop_tenant) && !chosen.contains(&scan_tenant) {
        println!("=> the selector admitted the looping tenant to the DeliWays");
        println!("   and kept the scan out — the NUcache mechanism, re-keyed");
        println!("   from program counters to caller-chosen insertion classes.");
    } else {
        println!("=> unexpected selection; try more rounds or a longer epoch.");
    }
}

/// A stand-in for whatever the cache protects (a parsed object, a
/// query result). The kernel is generic over the value type and never
/// clones it.
struct Payload {
    #[allow(dead_code)]
    key: u64,
    touches: u64,
}

impl Payload {
    fn fetch(key: u64) -> Self {
        Payload { key, touches: 0 }
    }
}
