//! End-to-end 4-core mix: evaluate every headline scheme on one mix and
//! report the multiprogrammed metrics.
//!
//! Run with: `cargo run --release --example multicore_mix`

use nucache_repro::common::table::{f3, Table};
use nucache_repro::sim::{Evaluator, Scheme, SimConfig};
use nucache_repro::trace::{Mix, SpecWorkload};

fn main() {
    // Shorter runs than the paper-scale experiments so the example
    // finishes in seconds.
    let config = SimConfig::baseline(4).with_run_lengths(100_000, 300_000);
    let mut eval = Evaluator::new(config);
    let mix = Mix::new(
        "example",
        vec![
            SpecWorkload::SphinxLike,
            SpecWorkload::LibquantumLike,
            SpecWorkload::McfLike,
            SpecWorkload::LbmLike,
        ],
    );
    println!("mix: {mix}\n");

    let mut t = Table::new(["scheme", "weighted_speedup", "antt", "throughput", "fairness"]);
    let mut lru_ws = None;
    for scheme in Scheme::headline_suite() {
        let (_, m) = eval.evaluate(&mix, &scheme);
        if scheme.name() == "lru" {
            lru_ws = Some(m.weighted_speedup);
        }
        t.row([
            scheme.name(),
            f3(m.weighted_speedup),
            f3(m.antt),
            f3(m.throughput),
            f3(m.fairness),
        ]);
    }
    print!("{}", t.to_text());
    if let Some(base) = lru_ws {
        let (_, nuc) = eval.evaluate(&mix, &Scheme::nucache_default());
        println!(
            "\nNUcache improves weighted speedup over shared LRU by {:.1}%",
            (nuc.weighted_speedup / base - 1.0) * 100.0
        );
    }
}
