//! Quickstart: build an NUcache LLC, feed it accesses, watch the
//! mechanism work.
//!
//! Run with: `cargo run --release --example quickstart`

use nucache_repro::cache::{CacheGeometry, SharedLlc};
use nucache_repro::common::{AccessKind, CoreId, LineAddr, Pc};
use nucache_repro::core::{NuCache, NuCacheConfig};

fn main() {
    // A 1 MiB, 16-way shared LLC with 8 DeliWays and a short selection
    // epoch so the demo converges quickly.
    let geom = CacheGeometry::new(1024 * 1024, 16, 64);
    let config = NuCacheConfig::default().with_deli_ways(8).with_epoch_len(20_000);
    let mut llc = NuCache::new(geom, 1, config);

    let core = CoreId::new(0);
    let loop_pc = Pc::new(0x400_1000); // a reusable working set
    let stream_pc = Pc::new(0x400_2000); // a pollution stream

    // The loop working set: 12 lines per set across all 1024 sets —
    // larger than the 8 MainWays, well within MainWays + DeliWays.
    let loop_lines = 12 * geom.num_sets() as u64;
    let mut stream_line = 1 << 30;

    println!("driving a loop PC (reusable) against a stream PC (no reuse)...\n");
    for round in 0..1_500_000u64 {
        let line = LineAddr::new(round % loop_lines);
        llc.access(core, loop_pc, line, AccessKind::Read);
        if round % 2 == 0 {
            llc.access(core, stream_pc, LineAddr::new(stream_line), AccessKind::Read);
            stream_line += 1;
        }
    }

    let stats = llc.stats();
    println!("LLC after {} accesses: {stats}", stats.accesses());
    println!("selection epochs run:   {}", llc.epochs());
    println!("currently chosen PCs:   {:?}", llc.chosen_pcs());
    println!("lines routed to DeliWays: {}", llc.deli_fills());
    println!("hits served by DeliWays:  {}", llc.deli_hits());
    println!();

    let chosen = llc.chosen_pcs();
    if chosen.contains(&loop_pc) && !chosen.contains(&stream_pc) {
        println!("=> the cost-benefit selector admitted the loop PC to the DeliWays");
        println!("   and kept the stream PC out — exactly the NUcache mechanism.");
    } else {
        println!("=> unexpected selection; try more rounds or a longer epoch.");
    }
}
