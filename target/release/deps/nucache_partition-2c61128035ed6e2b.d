/root/repo/target/release/deps/nucache_partition-2c61128035ed6e2b.d: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs

/root/repo/target/release/deps/libnucache_partition-2c61128035ed6e2b.rlib: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs

/root/repo/target/release/deps/libnucache_partition-2c61128035ed6e2b.rmeta: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs

crates/partition/src/lib.rs:
crates/partition/src/baselines.rs:
crates/partition/src/lookahead.rs:
crates/partition/src/pipp.rs:
crates/partition/src/ucp.rs:
