/root/repo/target/release/deps/table2_workloads-41831c7e0b37aa38.d: crates/experiments/src/bin/table2_workloads.rs

/root/repo/target/release/deps/table2_workloads-41831c7e0b37aa38: crates/experiments/src/bin/table2_workloads.rs

crates/experiments/src/bin/table2_workloads.rs:
