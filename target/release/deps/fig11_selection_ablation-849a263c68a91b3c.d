/root/repo/target/release/deps/fig11_selection_ablation-849a263c68a91b3c.d: crates/experiments/src/bin/fig11_selection_ablation.rs

/root/repo/target/release/deps/fig11_selection_ablation-849a263c68a91b3c: crates/experiments/src/bin/fig11_selection_ablation.rs

crates/experiments/src/bin/fig11_selection_ablation.rs:
