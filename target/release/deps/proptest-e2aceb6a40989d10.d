/root/repo/target/release/deps/proptest-e2aceb6a40989d10.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e2aceb6a40989d10.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e2aceb6a40989d10.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
