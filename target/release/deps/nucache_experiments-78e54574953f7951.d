/root/repo/target/release/deps/nucache_experiments-78e54574953f7951.d: crates/experiments/src/main.rs

/root/repo/target/release/deps/nucache_experiments-78e54574953f7951: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
