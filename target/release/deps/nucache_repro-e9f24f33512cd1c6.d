/root/repo/target/release/deps/nucache_repro-e9f24f33512cd1c6.d: src/lib.rs

/root/repo/target/release/deps/libnucache_repro-e9f24f33512cd1c6.rlib: src/lib.rs

/root/repo/target/release/deps/libnucache_repro-e9f24f33512cd1c6.rmeta: src/lib.rs

src/lib.rs:
