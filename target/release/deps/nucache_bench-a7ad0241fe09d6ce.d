/root/repo/target/release/deps/nucache_bench-a7ad0241fe09d6ce.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnucache_bench-a7ad0241fe09d6ce.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnucache_bench-a7ad0241fe09d6ce.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
