/root/repo/target/release/deps/table1_config-5d01459538e6f01f.d: crates/experiments/src/bin/table1_config.rs

/root/repo/target/release/deps/table1_config-5d01459538e6f01f: crates/experiments/src/bin/table1_config.rs

crates/experiments/src/bin/table1_config.rs:
