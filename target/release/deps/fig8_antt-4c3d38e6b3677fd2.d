/root/repo/target/release/deps/fig8_antt-4c3d38e6b3677fd2.d: crates/experiments/src/bin/fig8_antt.rs

/root/repo/target/release/deps/fig8_antt-4c3d38e6b3677fd2: crates/experiments/src/bin/fig8_antt.rs

crates/experiments/src/bin/fig8_antt.rs:
