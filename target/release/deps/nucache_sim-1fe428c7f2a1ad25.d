/root/repo/target/release/deps/nucache_sim-1fe428c7f2a1ad25.d: crates/sim/src/lib.rs crates/sim/src/args.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/evaluator.rs crates/sim/src/runner.rs crates/sim/src/scheme.rs

/root/repo/target/release/deps/libnucache_sim-1fe428c7f2a1ad25.rlib: crates/sim/src/lib.rs crates/sim/src/args.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/evaluator.rs crates/sim/src/runner.rs crates/sim/src/scheme.rs

/root/repo/target/release/deps/libnucache_sim-1fe428c7f2a1ad25.rmeta: crates/sim/src/lib.rs crates/sim/src/args.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/evaluator.rs crates/sim/src/runner.rs crates/sim/src/scheme.rs

crates/sim/src/lib.rs:
crates/sim/src/args.rs:
crates/sim/src/config.rs:
crates/sim/src/driver.rs:
crates/sim/src/evaluator.rs:
crates/sim/src/runner.rs:
crates/sim/src/scheme.rs:
