/root/repo/target/release/deps/table3_mixes-6671a6c24454d5db.d: crates/experiments/src/bin/table3_mixes.rs

/root/repo/target/release/deps/table3_mixes-6671a6c24454d5db: crates/experiments/src/bin/table3_mixes.rs

crates/experiments/src/bin/table3_mixes.rs:
