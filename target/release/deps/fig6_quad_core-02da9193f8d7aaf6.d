/root/repo/target/release/deps/fig6_quad_core-02da9193f8d7aaf6.d: crates/experiments/src/bin/fig6_quad_core.rs

/root/repo/target/release/deps/fig6_quad_core-02da9193f8d7aaf6: crates/experiments/src/bin/fig6_quad_core.rs

crates/experiments/src/bin/fig6_quad_core.rs:
