/root/repo/target/release/deps/fig7_eight_core-d27f96b985a1032e.d: crates/experiments/src/bin/fig7_eight_core.rs

/root/repo/target/release/deps/fig7_eight_core-d27f96b985a1032e: crates/experiments/src/bin/fig7_eight_core.rs

crates/experiments/src/bin/fig7_eight_core.rs:
