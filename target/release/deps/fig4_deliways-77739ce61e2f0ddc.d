/root/repo/target/release/deps/fig4_deliways-77739ce61e2f0ddc.d: crates/experiments/src/bin/fig4_deliways.rs

/root/repo/target/release/deps/fig4_deliways-77739ce61e2f0ddc: crates/experiments/src/bin/fig4_deliways.rs

crates/experiments/src/bin/fig4_deliways.rs:
