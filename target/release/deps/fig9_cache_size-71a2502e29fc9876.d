/root/repo/target/release/deps/fig9_cache_size-71a2502e29fc9876.d: crates/experiments/src/bin/fig9_cache_size.rs

/root/repo/target/release/deps/fig9_cache_size-71a2502e29fc9876: crates/experiments/src/bin/fig9_cache_size.rs

crates/experiments/src/bin/fig9_cache_size.rs:
