/root/repo/target/release/deps/nucache_experiments-4c3094f997fe0414.d: crates/experiments/src/lib.rs crates/experiments/src/characterize.rs crates/experiments/src/figs.rs crates/experiments/src/tables.rs

/root/repo/target/release/deps/libnucache_experiments-4c3094f997fe0414.rlib: crates/experiments/src/lib.rs crates/experiments/src/characterize.rs crates/experiments/src/figs.rs crates/experiments/src/tables.rs

/root/repo/target/release/deps/libnucache_experiments-4c3094f997fe0414.rmeta: crates/experiments/src/lib.rs crates/experiments/src/characterize.rs crates/experiments/src/figs.rs crates/experiments/src/tables.rs

crates/experiments/src/lib.rs:
crates/experiments/src/characterize.rs:
crates/experiments/src/figs.rs:
crates/experiments/src/tables.rs:
