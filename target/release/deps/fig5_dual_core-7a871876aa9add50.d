/root/repo/target/release/deps/fig5_dual_core-7a871876aa9add50.d: crates/experiments/src/bin/fig5_dual_core.rs

/root/repo/target/release/deps/fig5_dual_core-7a871876aa9add50: crates/experiments/src/bin/fig5_dual_core.rs

crates/experiments/src/bin/fig5_dual_core.rs:
