/root/repo/target/release/deps/nucache_cpu-12f003bca16c6558.d: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs

/root/repo/target/release/deps/libnucache_cpu-12f003bca16c6558.rlib: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs

/root/repo/target/release/deps/libnucache_cpu-12f003bca16c6558.rmeta: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs

crates/cpu/src/lib.rs:
crates/cpu/src/metrics.rs:
crates/cpu/src/timing.rs:
