/root/repo/target/release/deps/fig3_single_core-534968e8dc65dff3.d: crates/experiments/src/bin/fig3_single_core.rs

/root/repo/target/release/deps/fig3_single_core-534968e8dc65dff3: crates/experiments/src/bin/fig3_single_core.rs

crates/experiments/src/bin/fig3_single_core.rs:
