/root/repo/target/release/deps/substrate-0ec5be2bb978894f.d: crates/bench/benches/substrate.rs

/root/repo/target/release/deps/substrate-0ec5be2bb978894f: crates/bench/benches/substrate.rs

crates/bench/benches/substrate.rs:
