/root/repo/target/release/deps/nucache_core-f1050a57b35b7dcd.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs

/root/repo/target/release/deps/libnucache_core-f1050a57b35b7dcd.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs

/root/repo/target/release/deps/libnucache_core-f1050a57b35b7dcd.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/delinquent.rs:
crates/core/src/llc.rs:
crates/core/src/monitor.rs:
crates/core/src/overhead.rs:
crates/core/src/selector.rs:
