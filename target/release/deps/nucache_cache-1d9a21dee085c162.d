/root/repo/target/release/deps/nucache_cache-1d9a21dee085c162.d: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/basic.rs crates/cache/src/config.rs crates/cache/src/dueling.rs crates/cache/src/hierarchy.rs crates/cache/src/llc.rs crates/cache/src/meta.rs crates/cache/src/opt.rs crates/cache/src/policy/mod.rs crates/cache/src/policy/dip.rs crates/cache/src/policy/fifo.rs crates/cache/src/policy/lru.rs crates/cache/src/policy/nru.rs crates/cache/src/policy/plru.rs crates/cache/src/policy/random.rs crates/cache/src/policy/rrip.rs crates/cache/src/policy/ship.rs crates/cache/src/policy/tadip.rs crates/cache/src/shadow.rs crates/cache/src/stackdist.rs

/root/repo/target/release/deps/libnucache_cache-1d9a21dee085c162.rlib: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/basic.rs crates/cache/src/config.rs crates/cache/src/dueling.rs crates/cache/src/hierarchy.rs crates/cache/src/llc.rs crates/cache/src/meta.rs crates/cache/src/opt.rs crates/cache/src/policy/mod.rs crates/cache/src/policy/dip.rs crates/cache/src/policy/fifo.rs crates/cache/src/policy/lru.rs crates/cache/src/policy/nru.rs crates/cache/src/policy/plru.rs crates/cache/src/policy/random.rs crates/cache/src/policy/rrip.rs crates/cache/src/policy/ship.rs crates/cache/src/policy/tadip.rs crates/cache/src/shadow.rs crates/cache/src/stackdist.rs

/root/repo/target/release/deps/libnucache_cache-1d9a21dee085c162.rmeta: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/basic.rs crates/cache/src/config.rs crates/cache/src/dueling.rs crates/cache/src/hierarchy.rs crates/cache/src/llc.rs crates/cache/src/meta.rs crates/cache/src/opt.rs crates/cache/src/policy/mod.rs crates/cache/src/policy/dip.rs crates/cache/src/policy/fifo.rs crates/cache/src/policy/lru.rs crates/cache/src/policy/nru.rs crates/cache/src/policy/plru.rs crates/cache/src/policy/random.rs crates/cache/src/policy/rrip.rs crates/cache/src/policy/ship.rs crates/cache/src/policy/tadip.rs crates/cache/src/shadow.rs crates/cache/src/stackdist.rs

crates/cache/src/lib.rs:
crates/cache/src/array.rs:
crates/cache/src/basic.rs:
crates/cache/src/config.rs:
crates/cache/src/dueling.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/llc.rs:
crates/cache/src/meta.rs:
crates/cache/src/opt.rs:
crates/cache/src/policy/mod.rs:
crates/cache/src/policy/dip.rs:
crates/cache/src/policy/fifo.rs:
crates/cache/src/policy/lru.rs:
crates/cache/src/policy/nru.rs:
crates/cache/src/policy/plru.rs:
crates/cache/src/policy/random.rs:
crates/cache/src/policy/rrip.rs:
crates/cache/src/policy/ship.rs:
crates/cache/src/policy/tadip.rs:
crates/cache/src/shadow.rs:
crates/cache/src/stackdist.rs:
