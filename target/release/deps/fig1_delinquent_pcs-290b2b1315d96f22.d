/root/repo/target/release/deps/fig1_delinquent_pcs-290b2b1315d96f22.d: crates/experiments/src/bin/fig1_delinquent_pcs.rs

/root/repo/target/release/deps/fig1_delinquent_pcs-290b2b1315d96f22: crates/experiments/src/bin/fig1_delinquent_pcs.rs

crates/experiments/src/bin/fig1_delinquent_pcs.rs:
