/root/repo/target/release/deps/nucache_common-6a2cc08ff101e8ce.d: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs

/root/repo/target/release/deps/libnucache_common-6a2cc08ff101e8ce.rlib: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs

/root/repo/target/release/deps/libnucache_common-6a2cc08ff101e8ce.rmeta: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs

crates/common/src/lib.rs:
crates/common/src/access.rs:
crates/common/src/addr.rs:
crates/common/src/histogram.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/table.rs:
