/root/repo/target/release/deps/fig12_opt_headroom-2e63cf1c93220fc8.d: crates/experiments/src/bin/fig12_opt_headroom.rs

/root/repo/target/release/deps/fig12_opt_headroom-2e63cf1c93220fc8: crates/experiments/src/bin/fig12_opt_headroom.rs

crates/experiments/src/bin/fig12_opt_headroom.rs:
