/root/repo/target/release/deps/criterion-a8edbac4191471bb.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a8edbac4191471bb.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a8edbac4191471bb.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
