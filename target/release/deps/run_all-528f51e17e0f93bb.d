/root/repo/target/release/deps/run_all-528f51e17e0f93bb.d: crates/experiments/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-528f51e17e0f93bb: crates/experiments/src/bin/run_all.rs

crates/experiments/src/bin/run_all.rs:
