/root/repo/target/release/deps/table4_overhead-a60a9f6e77d172af.d: crates/experiments/src/bin/table4_overhead.rs

/root/repo/target/release/deps/table4_overhead-a60a9f6e77d172af: crates/experiments/src/bin/table4_overhead.rs

crates/experiments/src/bin/table4_overhead.rs:
