/root/repo/target/release/deps/fig10_epoch-3c81d4897b854cb0.d: crates/experiments/src/bin/fig10_epoch.rs

/root/repo/target/release/deps/fig10_epoch-3c81d4897b854cb0: crates/experiments/src/bin/fig10_epoch.rs

crates/experiments/src/bin/fig10_epoch.rs:
