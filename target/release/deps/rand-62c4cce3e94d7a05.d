/root/repo/target/release/deps/rand-62c4cce3e94d7a05.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-62c4cce3e94d7a05.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-62c4cce3e94d7a05.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
