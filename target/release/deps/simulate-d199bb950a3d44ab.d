/root/repo/target/release/deps/simulate-d199bb950a3d44ab.d: crates/experiments/src/bin/simulate.rs

/root/repo/target/release/deps/simulate-d199bb950a3d44ab: crates/experiments/src/bin/simulate.rs

crates/experiments/src/bin/simulate.rs:
