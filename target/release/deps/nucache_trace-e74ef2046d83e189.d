/root/repo/target/release/deps/nucache_trace-e74ef2046d83e189.d: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs

/root/repo/target/release/deps/libnucache_trace-e74ef2046d83e189.rlib: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs

/root/repo/target/release/deps/libnucache_trace-e74ef2046d83e189.rmeta: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/gen.rs:
crates/trace/src/io.rs:
crates/trace/src/mix.rs:
crates/trace/src/spec.rs:
crates/trace/src/stats.rs:
crates/trace/src/workload.rs:
