/root/repo/target/release/deps/fig2_next_use-27ef81a33c2526d7.d: crates/experiments/src/bin/fig2_next_use.rs

/root/repo/target/release/deps/fig2_next_use-27ef81a33c2526d7: crates/experiments/src/bin/fig2_next_use.rs

crates/experiments/src/bin/fig2_next_use.rs:
