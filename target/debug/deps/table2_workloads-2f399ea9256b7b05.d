/root/repo/target/debug/deps/table2_workloads-2f399ea9256b7b05.d: crates/experiments/src/bin/table2_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_workloads-2f399ea9256b7b05.rmeta: crates/experiments/src/bin/table2_workloads.rs Cargo.toml

crates/experiments/src/bin/table2_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
