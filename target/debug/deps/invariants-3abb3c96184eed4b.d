/root/repo/target/debug/deps/invariants-3abb3c96184eed4b.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-3abb3c96184eed4b: tests/invariants.rs

tests/invariants.rs:
