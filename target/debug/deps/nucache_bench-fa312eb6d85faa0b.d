/root/repo/target/debug/deps/nucache_bench-fa312eb6d85faa0b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_bench-fa312eb6d85faa0b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
