/root/repo/target/debug/deps/criterion-019d5708dc9e5ec2.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-019d5708dc9e5ec2.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
