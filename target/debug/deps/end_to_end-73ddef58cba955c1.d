/root/repo/target/debug/deps/end_to_end-73ddef58cba955c1.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-73ddef58cba955c1: tests/end_to_end.rs

tests/end_to_end.rs:
