/root/repo/target/debug/deps/nucache_cpu-77903a34f7bcb479.d: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_cpu-77903a34f7bcb479.rmeta: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs Cargo.toml

crates/cpu/src/lib.rs:
crates/cpu/src/metrics.rs:
crates/cpu/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
