/root/repo/target/debug/deps/simulate-99d3a6d20051113b.d: crates/experiments/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-99d3a6d20051113b.rmeta: crates/experiments/src/bin/simulate.rs Cargo.toml

crates/experiments/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
