/root/repo/target/debug/deps/nucache_repro-c15037e8e796b8dc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_repro-c15037e8e796b8dc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
