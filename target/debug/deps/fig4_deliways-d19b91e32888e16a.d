/root/repo/target/debug/deps/fig4_deliways-d19b91e32888e16a.d: crates/experiments/src/bin/fig4_deliways.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_deliways-d19b91e32888e16a.rmeta: crates/experiments/src/bin/fig4_deliways.rs Cargo.toml

crates/experiments/src/bin/fig4_deliways.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
