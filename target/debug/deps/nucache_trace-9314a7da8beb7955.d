/root/repo/target/debug/deps/nucache_trace-9314a7da8beb7955.d: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs

/root/repo/target/debug/deps/nucache_trace-9314a7da8beb7955: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/gen.rs:
crates/trace/src/io.rs:
crates/trace/src/mix.rs:
crates/trace/src/spec.rs:
crates/trace/src/stats.rs:
crates/trace/src/workload.rs:
