/root/repo/target/debug/deps/table1_config-54a7949e26695a67.d: crates/experiments/src/bin/table1_config.rs

/root/repo/target/debug/deps/table1_config-54a7949e26695a67: crates/experiments/src/bin/table1_config.rs

crates/experiments/src/bin/table1_config.rs:
