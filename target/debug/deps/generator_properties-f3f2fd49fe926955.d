/root/repo/target/debug/deps/generator_properties-f3f2fd49fe926955.d: crates/trace/tests/generator_properties.rs Cargo.toml

/root/repo/target/debug/deps/libgenerator_properties-f3f2fd49fe926955.rmeta: crates/trace/tests/generator_properties.rs Cargo.toml

crates/trace/tests/generator_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
