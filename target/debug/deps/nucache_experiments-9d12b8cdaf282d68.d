/root/repo/target/debug/deps/nucache_experiments-9d12b8cdaf282d68.d: crates/experiments/src/lib.rs crates/experiments/src/characterize.rs crates/experiments/src/figs.rs crates/experiments/src/tables.rs

/root/repo/target/debug/deps/libnucache_experiments-9d12b8cdaf282d68.rlib: crates/experiments/src/lib.rs crates/experiments/src/characterize.rs crates/experiments/src/figs.rs crates/experiments/src/tables.rs

/root/repo/target/debug/deps/libnucache_experiments-9d12b8cdaf282d68.rmeta: crates/experiments/src/lib.rs crates/experiments/src/characterize.rs crates/experiments/src/figs.rs crates/experiments/src/tables.rs

crates/experiments/src/lib.rs:
crates/experiments/src/characterize.rs:
crates/experiments/src/figs.rs:
crates/experiments/src/tables.rs:
