/root/repo/target/debug/deps/selector_properties-99971307f8bc2c07.d: crates/core/tests/selector_properties.rs

/root/repo/target/debug/deps/selector_properties-99971307f8bc2c07: crates/core/tests/selector_properties.rs

crates/core/tests/selector_properties.rs:
