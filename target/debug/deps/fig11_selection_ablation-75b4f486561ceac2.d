/root/repo/target/debug/deps/fig11_selection_ablation-75b4f486561ceac2.d: crates/experiments/src/bin/fig11_selection_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_selection_ablation-75b4f486561ceac2.rmeta: crates/experiments/src/bin/fig11_selection_ablation.rs Cargo.toml

crates/experiments/src/bin/fig11_selection_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
