/root/repo/target/debug/deps/array_equivalence-4d12c4d99383e1db.d: crates/cache/tests/array_equivalence.rs

/root/repo/target/debug/deps/array_equivalence-4d12c4d99383e1db: crates/cache/tests/array_equivalence.rs

crates/cache/tests/array_equivalence.rs:
