/root/repo/target/debug/deps/run_all-748cc2d44aa00ab5.d: crates/experiments/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-748cc2d44aa00ab5.rmeta: crates/experiments/src/bin/run_all.rs Cargo.toml

crates/experiments/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
