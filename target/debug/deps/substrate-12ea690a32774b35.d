/root/repo/target/debug/deps/substrate-12ea690a32774b35.d: crates/bench/benches/substrate.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate-12ea690a32774b35.rmeta: crates/bench/benches/substrate.rs Cargo.toml

crates/bench/benches/substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
