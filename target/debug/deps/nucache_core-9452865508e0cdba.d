/root/repo/target/debug/deps/nucache_core-9452865508e0cdba.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs

/root/repo/target/debug/deps/nucache_core-9452865508e0cdba: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/delinquent.rs:
crates/core/src/llc.rs:
crates/core/src/monitor.rs:
crates/core/src/overhead.rs:
crates/core/src/selector.rs:
