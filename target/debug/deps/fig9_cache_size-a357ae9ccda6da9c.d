/root/repo/target/debug/deps/fig9_cache_size-a357ae9ccda6da9c.d: crates/experiments/src/bin/fig9_cache_size.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_cache_size-a357ae9ccda6da9c.rmeta: crates/experiments/src/bin/fig9_cache_size.rs Cargo.toml

crates/experiments/src/bin/fig9_cache_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
