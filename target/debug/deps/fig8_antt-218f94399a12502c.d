/root/repo/target/debug/deps/fig8_antt-218f94399a12502c.d: crates/experiments/src/bin/fig8_antt.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_antt-218f94399a12502c.rmeta: crates/experiments/src/bin/fig8_antt.rs Cargo.toml

crates/experiments/src/bin/fig8_antt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
