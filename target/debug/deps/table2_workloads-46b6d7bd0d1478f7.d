/root/repo/target/debug/deps/table2_workloads-46b6d7bd0d1478f7.d: crates/experiments/src/bin/table2_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_workloads-46b6d7bd0d1478f7.rmeta: crates/experiments/src/bin/table2_workloads.rs Cargo.toml

crates/experiments/src/bin/table2_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
