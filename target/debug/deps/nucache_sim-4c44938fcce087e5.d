/root/repo/target/debug/deps/nucache_sim-4c44938fcce087e5.d: crates/sim/src/lib.rs crates/sim/src/args.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/evaluator.rs crates/sim/src/runner.rs crates/sim/src/scheme.rs

/root/repo/target/debug/deps/nucache_sim-4c44938fcce087e5: crates/sim/src/lib.rs crates/sim/src/args.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/evaluator.rs crates/sim/src/runner.rs crates/sim/src/scheme.rs

crates/sim/src/lib.rs:
crates/sim/src/args.rs:
crates/sim/src/config.rs:
crates/sim/src/driver.rs:
crates/sim/src/evaluator.rs:
crates/sim/src/runner.rs:
crates/sim/src/scheme.rs:
