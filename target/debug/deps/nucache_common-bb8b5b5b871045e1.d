/root/repo/target/debug/deps/nucache_common-bb8b5b5b871045e1.d: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs

/root/repo/target/debug/deps/nucache_common-bb8b5b5b871045e1: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs

crates/common/src/lib.rs:
crates/common/src/access.rs:
crates/common/src/addr.rs:
crates/common/src/histogram.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/table.rs:
