/root/repo/target/debug/deps/nucache_partition-35b7018affb336dd.d: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_partition-35b7018affb336dd.rmeta: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/baselines.rs:
crates/partition/src/lookahead.rs:
crates/partition/src/pipp.rs:
crates/partition/src/ucp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
