/root/repo/target/debug/deps/fig2_next_use-76e2f2c43e8b3bbb.d: crates/experiments/src/bin/fig2_next_use.rs

/root/repo/target/debug/deps/fig2_next_use-76e2f2c43e8b3bbb: crates/experiments/src/bin/fig2_next_use.rs

crates/experiments/src/bin/fig2_next_use.rs:
