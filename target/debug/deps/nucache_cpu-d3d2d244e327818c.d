/root/repo/target/debug/deps/nucache_cpu-d3d2d244e327818c.d: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs

/root/repo/target/debug/deps/libnucache_cpu-d3d2d244e327818c.rlib: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs

/root/repo/target/debug/deps/libnucache_cpu-d3d2d244e327818c.rmeta: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs

crates/cpu/src/lib.rs:
crates/cpu/src/metrics.rs:
crates/cpu/src/timing.rs:
