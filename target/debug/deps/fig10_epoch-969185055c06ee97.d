/root/repo/target/debug/deps/fig10_epoch-969185055c06ee97.d: crates/experiments/src/bin/fig10_epoch.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_epoch-969185055c06ee97.rmeta: crates/experiments/src/bin/fig10_epoch.rs Cargo.toml

crates/experiments/src/bin/fig10_epoch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
