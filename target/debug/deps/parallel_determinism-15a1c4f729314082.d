/root/repo/target/debug/deps/parallel_determinism-15a1c4f729314082.d: crates/sim/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-15a1c4f729314082: crates/sim/tests/parallel_determinism.rs

crates/sim/tests/parallel_determinism.rs:
