/root/repo/target/debug/deps/end_to_end-fd6e9daab2619251.d: crates/bench/benches/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-fd6e9daab2619251.rmeta: crates/bench/benches/end_to_end.rs Cargo.toml

crates/bench/benches/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
