/root/repo/target/debug/deps/nucache_experiments-7d275a0ab5dc6cfb.d: crates/experiments/src/lib.rs crates/experiments/src/characterize.rs crates/experiments/src/figs.rs crates/experiments/src/tables.rs

/root/repo/target/debug/deps/nucache_experiments-7d275a0ab5dc6cfb: crates/experiments/src/lib.rs crates/experiments/src/characterize.rs crates/experiments/src/figs.rs crates/experiments/src/tables.rs

crates/experiments/src/lib.rs:
crates/experiments/src/characterize.rs:
crates/experiments/src/figs.rs:
crates/experiments/src/tables.rs:
