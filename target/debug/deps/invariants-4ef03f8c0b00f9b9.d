/root/repo/target/debug/deps/invariants-4ef03f8c0b00f9b9.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-4ef03f8c0b00f9b9.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
