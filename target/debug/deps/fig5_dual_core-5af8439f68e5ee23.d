/root/repo/target/debug/deps/fig5_dual_core-5af8439f68e5ee23.d: crates/experiments/src/bin/fig5_dual_core.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_dual_core-5af8439f68e5ee23.rmeta: crates/experiments/src/bin/fig5_dual_core.rs Cargo.toml

crates/experiments/src/bin/fig5_dual_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
