/root/repo/target/debug/deps/fig11_selection_ablation-9d3a770cc9bd0524.d: crates/experiments/src/bin/fig11_selection_ablation.rs

/root/repo/target/debug/deps/fig11_selection_ablation-9d3a770cc9bd0524: crates/experiments/src/bin/fig11_selection_ablation.rs

crates/experiments/src/bin/fig11_selection_ablation.rs:
