/root/repo/target/debug/deps/criterion-4538f125f07ae741.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-4538f125f07ae741: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
