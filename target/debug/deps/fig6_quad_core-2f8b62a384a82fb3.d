/root/repo/target/debug/deps/fig6_quad_core-2f8b62a384a82fb3.d: crates/experiments/src/bin/fig6_quad_core.rs

/root/repo/target/debug/deps/fig6_quad_core-2f8b62a384a82fb3: crates/experiments/src/bin/fig6_quad_core.rs

crates/experiments/src/bin/fig6_quad_core.rs:
