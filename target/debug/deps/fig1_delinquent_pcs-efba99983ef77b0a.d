/root/repo/target/debug/deps/fig1_delinquent_pcs-efba99983ef77b0a.d: crates/experiments/src/bin/fig1_delinquent_pcs.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_delinquent_pcs-efba99983ef77b0a.rmeta: crates/experiments/src/bin/fig1_delinquent_pcs.rs Cargo.toml

crates/experiments/src/bin/fig1_delinquent_pcs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
