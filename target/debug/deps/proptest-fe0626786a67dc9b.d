/root/repo/target/debug/deps/proptest-fe0626786a67dc9b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-fe0626786a67dc9b.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-fe0626786a67dc9b.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
