/root/repo/target/debug/deps/nucache_bench-4eba3650722da1de.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_bench-4eba3650722da1de.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
