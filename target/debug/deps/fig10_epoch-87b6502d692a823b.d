/root/repo/target/debug/deps/fig10_epoch-87b6502d692a823b.d: crates/experiments/src/bin/fig10_epoch.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_epoch-87b6502d692a823b.rmeta: crates/experiments/src/bin/fig10_epoch.rs Cargo.toml

crates/experiments/src/bin/fig10_epoch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
