/root/repo/target/debug/deps/fig8_antt-2fbd9a227c349f45.d: crates/experiments/src/bin/fig8_antt.rs

/root/repo/target/debug/deps/fig8_antt-2fbd9a227c349f45: crates/experiments/src/bin/fig8_antt.rs

crates/experiments/src/bin/fig8_antt.rs:
