/root/repo/target/debug/deps/selector_properties-fd3e9954626e7b71.d: crates/core/tests/selector_properties.rs Cargo.toml

/root/repo/target/debug/deps/libselector_properties-fd3e9954626e7b71.rmeta: crates/core/tests/selector_properties.rs Cargo.toml

crates/core/tests/selector_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
