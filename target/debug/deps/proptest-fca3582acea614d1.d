/root/repo/target/debug/deps/proptest-fca3582acea614d1.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-fca3582acea614d1: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
