/root/repo/target/debug/deps/nucache_repro-fd438fd565e9ffed.d: src/lib.rs

/root/repo/target/debug/deps/libnucache_repro-fd438fd565e9ffed.rlib: src/lib.rs

/root/repo/target/debug/deps/libnucache_repro-fd438fd565e9ffed.rmeta: src/lib.rs

src/lib.rs:
