/root/repo/target/debug/deps/nucache_trace-7ab8da273d9a6ee9.d: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_trace-7ab8da273d9a6ee9.rmeta: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/gen.rs:
crates/trace/src/io.rs:
crates/trace/src/mix.rs:
crates/trace/src/spec.rs:
crates/trace/src/stats.rs:
crates/trace/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
