/root/repo/target/debug/deps/nucache_core-fda9eb5d9c5095aa.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs

/root/repo/target/debug/deps/libnucache_core-fda9eb5d9c5095aa.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs

/root/repo/target/debug/deps/libnucache_core-fda9eb5d9c5095aa.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/delinquent.rs:
crates/core/src/llc.rs:
crates/core/src/monitor.rs:
crates/core/src/overhead.rs:
crates/core/src/selector.rs:
