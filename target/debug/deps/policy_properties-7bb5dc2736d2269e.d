/root/repo/target/debug/deps/policy_properties-7bb5dc2736d2269e.d: crates/cache/tests/policy_properties.rs

/root/repo/target/debug/deps/policy_properties-7bb5dc2736d2269e: crates/cache/tests/policy_properties.rs

crates/cache/tests/policy_properties.rs:
