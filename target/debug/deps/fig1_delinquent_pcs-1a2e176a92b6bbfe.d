/root/repo/target/debug/deps/fig1_delinquent_pcs-1a2e176a92b6bbfe.d: crates/experiments/src/bin/fig1_delinquent_pcs.rs

/root/repo/target/debug/deps/fig1_delinquent_pcs-1a2e176a92b6bbfe: crates/experiments/src/bin/fig1_delinquent_pcs.rs

crates/experiments/src/bin/fig1_delinquent_pcs.rs:
