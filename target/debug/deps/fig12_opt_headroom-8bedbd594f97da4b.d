/root/repo/target/debug/deps/fig12_opt_headroom-8bedbd594f97da4b.d: crates/experiments/src/bin/fig12_opt_headroom.rs

/root/repo/target/debug/deps/fig12_opt_headroom-8bedbd594f97da4b: crates/experiments/src/bin/fig12_opt_headroom.rs

crates/experiments/src/bin/fig12_opt_headroom.rs:
