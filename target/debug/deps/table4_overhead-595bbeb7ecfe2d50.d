/root/repo/target/debug/deps/table4_overhead-595bbeb7ecfe2d50.d: crates/experiments/src/bin/table4_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_overhead-595bbeb7ecfe2d50.rmeta: crates/experiments/src/bin/table4_overhead.rs Cargo.toml

crates/experiments/src/bin/table4_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
