/root/repo/target/debug/deps/table1_config-430bbdca058d7d17.d: crates/experiments/src/bin/table1_config.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_config-430bbdca058d7d17.rmeta: crates/experiments/src/bin/table1_config.rs Cargo.toml

crates/experiments/src/bin/table1_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
