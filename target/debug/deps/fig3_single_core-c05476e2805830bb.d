/root/repo/target/debug/deps/fig3_single_core-c05476e2805830bb.d: crates/experiments/src/bin/fig3_single_core.rs

/root/repo/target/debug/deps/fig3_single_core-c05476e2805830bb: crates/experiments/src/bin/fig3_single_core.rs

crates/experiments/src/bin/fig3_single_core.rs:
