/root/repo/target/debug/deps/nucache_core-76ebf7691c70cbdb.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_core-76ebf7691c70cbdb.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/delinquent.rs:
crates/core/src/llc.rs:
crates/core/src/monitor.rs:
crates/core/src/overhead.rs:
crates/core/src/selector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
