/root/repo/target/debug/deps/run_all-641000e01fdfc0e8.d: crates/experiments/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-641000e01fdfc0e8: crates/experiments/src/bin/run_all.rs

crates/experiments/src/bin/run_all.rs:
