/root/repo/target/debug/deps/fig5_dual_core-2123b757cf08f1bd.d: crates/experiments/src/bin/fig5_dual_core.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_dual_core-2123b757cf08f1bd.rmeta: crates/experiments/src/bin/fig5_dual_core.rs Cargo.toml

crates/experiments/src/bin/fig5_dual_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
