/root/repo/target/debug/deps/rand-7bbef0f1a4e22480.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-7bbef0f1a4e22480: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
