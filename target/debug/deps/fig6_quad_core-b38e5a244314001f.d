/root/repo/target/debug/deps/fig6_quad_core-b38e5a244314001f.d: crates/experiments/src/bin/fig6_quad_core.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_quad_core-b38e5a244314001f.rmeta: crates/experiments/src/bin/fig6_quad_core.rs Cargo.toml

crates/experiments/src/bin/fig6_quad_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
