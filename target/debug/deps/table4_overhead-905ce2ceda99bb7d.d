/root/repo/target/debug/deps/table4_overhead-905ce2ceda99bb7d.d: crates/experiments/src/bin/table4_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_overhead-905ce2ceda99bb7d.rmeta: crates/experiments/src/bin/table4_overhead.rs Cargo.toml

crates/experiments/src/bin/table4_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
