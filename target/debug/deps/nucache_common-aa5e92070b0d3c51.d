/root/repo/target/debug/deps/nucache_common-aa5e92070b0d3c51.d: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_common-aa5e92070b0d3c51.rmeta: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/access.rs:
crates/common/src/addr.rs:
crates/common/src/histogram.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
