/root/repo/target/debug/deps/rand-a5e25ea753c6c56c.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a5e25ea753c6c56c.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a5e25ea753c6c56c.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
