/root/repo/target/debug/deps/fig3_single_core-fb5c2d083e8d5994.d: crates/experiments/src/bin/fig3_single_core.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_single_core-fb5c2d083e8d5994.rmeta: crates/experiments/src/bin/fig3_single_core.rs Cargo.toml

crates/experiments/src/bin/fig3_single_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
