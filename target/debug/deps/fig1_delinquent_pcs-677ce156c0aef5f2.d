/root/repo/target/debug/deps/fig1_delinquent_pcs-677ce156c0aef5f2.d: crates/experiments/src/bin/fig1_delinquent_pcs.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_delinquent_pcs-677ce156c0aef5f2.rmeta: crates/experiments/src/bin/fig1_delinquent_pcs.rs Cargo.toml

crates/experiments/src/bin/fig1_delinquent_pcs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
