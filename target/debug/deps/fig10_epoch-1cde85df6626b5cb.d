/root/repo/target/debug/deps/fig10_epoch-1cde85df6626b5cb.d: crates/experiments/src/bin/fig10_epoch.rs

/root/repo/target/debug/deps/fig10_epoch-1cde85df6626b5cb: crates/experiments/src/bin/fig10_epoch.rs

crates/experiments/src/bin/fig10_epoch.rs:
