/root/repo/target/debug/deps/table3_mixes-ddbd04e6b22e82e7.d: crates/experiments/src/bin/table3_mixes.rs

/root/repo/target/debug/deps/table3_mixes-ddbd04e6b22e82e7: crates/experiments/src/bin/table3_mixes.rs

crates/experiments/src/bin/table3_mixes.rs:
