/root/repo/target/debug/deps/table3_mixes-d190dad07eb86872.d: crates/experiments/src/bin/table3_mixes.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_mixes-d190dad07eb86872.rmeta: crates/experiments/src/bin/table3_mixes.rs Cargo.toml

crates/experiments/src/bin/table3_mixes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
