/root/repo/target/debug/deps/array_equivalence-4b08e1bc51c5cdd3.d: crates/cache/tests/array_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libarray_equivalence-4b08e1bc51c5cdd3.rmeta: crates/cache/tests/array_equivalence.rs Cargo.toml

crates/cache/tests/array_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
