/root/repo/target/debug/deps/criterion-f9fec8b4afcd4ad2.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-f9fec8b4afcd4ad2.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
