/root/repo/target/debug/deps/table1_config-d6e3185e85195637.d: crates/experiments/src/bin/table1_config.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_config-d6e3185e85195637.rmeta: crates/experiments/src/bin/table1_config.rs Cargo.toml

crates/experiments/src/bin/table1_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
