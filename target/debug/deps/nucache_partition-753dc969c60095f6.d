/root/repo/target/debug/deps/nucache_partition-753dc969c60095f6.d: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_partition-753dc969c60095f6.rmeta: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/baselines.rs:
crates/partition/src/lookahead.rs:
crates/partition/src/pipp.rs:
crates/partition/src/ucp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
