/root/repo/target/debug/deps/nucache_common-d140b761aac83fab.d: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_common-d140b761aac83fab.rmeta: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/access.rs:
crates/common/src/addr.rs:
crates/common/src/histogram.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
