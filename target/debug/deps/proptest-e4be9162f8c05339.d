/root/repo/target/debug/deps/proptest-e4be9162f8c05339.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-e4be9162f8c05339.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
