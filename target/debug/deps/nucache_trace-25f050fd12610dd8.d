/root/repo/target/debug/deps/nucache_trace-25f050fd12610dd8.d: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_trace-25f050fd12610dd8.rmeta: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/gen.rs:
crates/trace/src/io.rs:
crates/trace/src/mix.rs:
crates/trace/src/spec.rs:
crates/trace/src/stats.rs:
crates/trace/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
