/root/repo/target/debug/deps/policies-9aa9bfa23441ba79.d: crates/bench/benches/policies.rs Cargo.toml

/root/repo/target/debug/deps/libpolicies-9aa9bfa23441ba79.rmeta: crates/bench/benches/policies.rs Cargo.toml

crates/bench/benches/policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
