/root/repo/target/debug/deps/nucache_partition-33cc266db59544f5.d: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs

/root/repo/target/debug/deps/nucache_partition-33cc266db59544f5: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs

crates/partition/src/lib.rs:
crates/partition/src/baselines.rs:
crates/partition/src/lookahead.rs:
crates/partition/src/pipp.rs:
crates/partition/src/ucp.rs:
