/root/repo/target/debug/deps/nucache_experiments-e02fb875e451eaef.d: crates/experiments/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_experiments-e02fb875e451eaef.rmeta: crates/experiments/src/main.rs Cargo.toml

crates/experiments/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
