/root/repo/target/debug/deps/nucache_repro-c2ac726053e76be5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_repro-c2ac726053e76be5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
