/root/repo/target/debug/deps/nucache_partition-5b71cc155f382c2d.d: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs

/root/repo/target/debug/deps/libnucache_partition-5b71cc155f382c2d.rlib: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs

/root/repo/target/debug/deps/libnucache_partition-5b71cc155f382c2d.rmeta: crates/partition/src/lib.rs crates/partition/src/baselines.rs crates/partition/src/lookahead.rs crates/partition/src/pipp.rs crates/partition/src/ucp.rs

crates/partition/src/lib.rs:
crates/partition/src/baselines.rs:
crates/partition/src/lookahead.rs:
crates/partition/src/pipp.rs:
crates/partition/src/ucp.rs:
