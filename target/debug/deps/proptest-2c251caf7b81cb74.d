/root/repo/target/debug/deps/proptest-2c251caf7b81cb74.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2c251caf7b81cb74.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
