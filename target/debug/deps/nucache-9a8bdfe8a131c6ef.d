/root/repo/target/debug/deps/nucache-9a8bdfe8a131c6ef.d: crates/bench/benches/nucache.rs Cargo.toml

/root/repo/target/debug/deps/libnucache-9a8bdfe8a131c6ef.rmeta: crates/bench/benches/nucache.rs Cargo.toml

crates/bench/benches/nucache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
