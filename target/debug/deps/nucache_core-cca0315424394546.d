/root/repo/target/debug/deps/nucache_core-cca0315424394546.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_core-cca0315424394546.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delinquent.rs crates/core/src/llc.rs crates/core/src/monitor.rs crates/core/src/overhead.rs crates/core/src/selector.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/delinquent.rs:
crates/core/src/llc.rs:
crates/core/src/monitor.rs:
crates/core/src/overhead.rs:
crates/core/src/selector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
