/root/repo/target/debug/deps/fig9_cache_size-2a038be87c64de30.d: crates/experiments/src/bin/fig9_cache_size.rs

/root/repo/target/debug/deps/fig9_cache_size-2a038be87c64de30: crates/experiments/src/bin/fig9_cache_size.rs

crates/experiments/src/bin/fig9_cache_size.rs:
