/root/repo/target/debug/deps/rand-25216dccf2ec4048.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-25216dccf2ec4048.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
