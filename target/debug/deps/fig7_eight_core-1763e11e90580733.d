/root/repo/target/debug/deps/fig7_eight_core-1763e11e90580733.d: crates/experiments/src/bin/fig7_eight_core.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_eight_core-1763e11e90580733.rmeta: crates/experiments/src/bin/fig7_eight_core.rs Cargo.toml

crates/experiments/src/bin/fig7_eight_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
