/root/repo/target/debug/deps/table3_mixes-be370987c3c837c9.d: crates/experiments/src/bin/table3_mixes.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_mixes-be370987c3c837c9.rmeta: crates/experiments/src/bin/table3_mixes.rs Cargo.toml

crates/experiments/src/bin/table3_mixes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
