/root/repo/target/debug/deps/fig4_deliways-6989a5732176f322.d: crates/experiments/src/bin/fig4_deliways.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_deliways-6989a5732176f322.rmeta: crates/experiments/src/bin/fig4_deliways.rs Cargo.toml

crates/experiments/src/bin/fig4_deliways.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
