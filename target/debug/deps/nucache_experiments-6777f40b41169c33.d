/root/repo/target/debug/deps/nucache_experiments-6777f40b41169c33.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/nucache_experiments-6777f40b41169c33: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
