/root/repo/target/debug/deps/fig4_deliways-05abfd3b21f31d42.d: crates/experiments/src/bin/fig4_deliways.rs

/root/repo/target/debug/deps/fig4_deliways-05abfd3b21f31d42: crates/experiments/src/bin/fig4_deliways.rs

crates/experiments/src/bin/fig4_deliways.rs:
