/root/repo/target/debug/deps/fig5_dual_core-14644169d85aa097.d: crates/experiments/src/bin/fig5_dual_core.rs

/root/repo/target/debug/deps/fig5_dual_core-14644169d85aa097: crates/experiments/src/bin/fig5_dual_core.rs

crates/experiments/src/bin/fig5_dual_core.rs:
