/root/repo/target/debug/deps/nucache_sim-c140ada2eab26ef2.d: crates/sim/src/lib.rs crates/sim/src/args.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/evaluator.rs crates/sim/src/runner.rs crates/sim/src/scheme.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_sim-c140ada2eab26ef2.rmeta: crates/sim/src/lib.rs crates/sim/src/args.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/evaluator.rs crates/sim/src/runner.rs crates/sim/src/scheme.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/args.rs:
crates/sim/src/config.rs:
crates/sim/src/driver.rs:
crates/sim/src/evaluator.rs:
crates/sim/src/runner.rs:
crates/sim/src/scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
