/root/repo/target/debug/deps/nucache_bench-902111c818047db8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnucache_bench-902111c818047db8.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnucache_bench-902111c818047db8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
