/root/repo/target/debug/deps/fig6_quad_core-d2a94e7107fd658e.d: crates/experiments/src/bin/fig6_quad_core.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_quad_core-d2a94e7107fd658e.rmeta: crates/experiments/src/bin/fig6_quad_core.rs Cargo.toml

crates/experiments/src/bin/fig6_quad_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
