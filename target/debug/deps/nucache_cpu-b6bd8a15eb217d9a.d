/root/repo/target/debug/deps/nucache_cpu-b6bd8a15eb217d9a.d: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_cpu-b6bd8a15eb217d9a.rmeta: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs Cargo.toml

crates/cpu/src/lib.rs:
crates/cpu/src/metrics.rs:
crates/cpu/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
