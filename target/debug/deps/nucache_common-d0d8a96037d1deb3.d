/root/repo/target/debug/deps/nucache_common-d0d8a96037d1deb3.d: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs

/root/repo/target/debug/deps/libnucache_common-d0d8a96037d1deb3.rlib: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs

/root/repo/target/debug/deps/libnucache_common-d0d8a96037d1deb3.rmeta: crates/common/src/lib.rs crates/common/src/access.rs crates/common/src/addr.rs crates/common/src/histogram.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/table.rs

crates/common/src/lib.rs:
crates/common/src/access.rs:
crates/common/src/addr.rs:
crates/common/src/histogram.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/table.rs:
