/root/repo/target/debug/deps/nucache_cpu-762f8e184afa287d.d: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs

/root/repo/target/debug/deps/nucache_cpu-762f8e184afa287d: crates/cpu/src/lib.rs crates/cpu/src/metrics.rs crates/cpu/src/timing.rs

crates/cpu/src/lib.rs:
crates/cpu/src/metrics.rs:
crates/cpu/src/timing.rs:
