/root/repo/target/debug/deps/nucache_bench-3e703a0e8bb2722c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/nucache_bench-3e703a0e8bb2722c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
