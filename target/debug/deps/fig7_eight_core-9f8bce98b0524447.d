/root/repo/target/debug/deps/fig7_eight_core-9f8bce98b0524447.d: crates/experiments/src/bin/fig7_eight_core.rs

/root/repo/target/debug/deps/fig7_eight_core-9f8bce98b0524447: crates/experiments/src/bin/fig7_eight_core.rs

crates/experiments/src/bin/fig7_eight_core.rs:
