/root/repo/target/debug/deps/nucache_cache-fc0715f7f97aac22.d: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/basic.rs crates/cache/src/config.rs crates/cache/src/dueling.rs crates/cache/src/hierarchy.rs crates/cache/src/llc.rs crates/cache/src/meta.rs crates/cache/src/opt.rs crates/cache/src/policy/mod.rs crates/cache/src/policy/dip.rs crates/cache/src/policy/fifo.rs crates/cache/src/policy/lru.rs crates/cache/src/policy/nru.rs crates/cache/src/policy/plru.rs crates/cache/src/policy/random.rs crates/cache/src/policy/rrip.rs crates/cache/src/policy/ship.rs crates/cache/src/policy/tadip.rs crates/cache/src/shadow.rs crates/cache/src/stackdist.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_cache-fc0715f7f97aac22.rmeta: crates/cache/src/lib.rs crates/cache/src/array.rs crates/cache/src/basic.rs crates/cache/src/config.rs crates/cache/src/dueling.rs crates/cache/src/hierarchy.rs crates/cache/src/llc.rs crates/cache/src/meta.rs crates/cache/src/opt.rs crates/cache/src/policy/mod.rs crates/cache/src/policy/dip.rs crates/cache/src/policy/fifo.rs crates/cache/src/policy/lru.rs crates/cache/src/policy/nru.rs crates/cache/src/policy/plru.rs crates/cache/src/policy/random.rs crates/cache/src/policy/rrip.rs crates/cache/src/policy/ship.rs crates/cache/src/policy/tadip.rs crates/cache/src/shadow.rs crates/cache/src/stackdist.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/array.rs:
crates/cache/src/basic.rs:
crates/cache/src/config.rs:
crates/cache/src/dueling.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/llc.rs:
crates/cache/src/meta.rs:
crates/cache/src/opt.rs:
crates/cache/src/policy/mod.rs:
crates/cache/src/policy/dip.rs:
crates/cache/src/policy/fifo.rs:
crates/cache/src/policy/lru.rs:
crates/cache/src/policy/nru.rs:
crates/cache/src/policy/plru.rs:
crates/cache/src/policy/random.rs:
crates/cache/src/policy/rrip.rs:
crates/cache/src/policy/ship.rs:
crates/cache/src/policy/tadip.rs:
crates/cache/src/shadow.rs:
crates/cache/src/stackdist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
