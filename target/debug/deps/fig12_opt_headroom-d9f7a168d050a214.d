/root/repo/target/debug/deps/fig12_opt_headroom-d9f7a168d050a214.d: crates/experiments/src/bin/fig12_opt_headroom.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_opt_headroom-d9f7a168d050a214.rmeta: crates/experiments/src/bin/fig12_opt_headroom.rs Cargo.toml

crates/experiments/src/bin/fig12_opt_headroom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
