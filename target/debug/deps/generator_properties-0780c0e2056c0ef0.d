/root/repo/target/debug/deps/generator_properties-0780c0e2056c0ef0.d: crates/trace/tests/generator_properties.rs

/root/repo/target/debug/deps/generator_properties-0780c0e2056c0ef0: crates/trace/tests/generator_properties.rs

crates/trace/tests/generator_properties.rs:
