/root/repo/target/debug/deps/run_all-fab7c11da317c1b6.d: crates/experiments/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-fab7c11da317c1b6.rmeta: crates/experiments/src/bin/run_all.rs Cargo.toml

crates/experiments/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
