/root/repo/target/debug/deps/policy_properties-af3319d374581d50.d: crates/cache/tests/policy_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_properties-af3319d374581d50.rmeta: crates/cache/tests/policy_properties.rs Cargo.toml

crates/cache/tests/policy_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
