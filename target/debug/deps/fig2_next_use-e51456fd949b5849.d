/root/repo/target/debug/deps/fig2_next_use-e51456fd949b5849.d: crates/experiments/src/bin/fig2_next_use.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_next_use-e51456fd949b5849.rmeta: crates/experiments/src/bin/fig2_next_use.rs Cargo.toml

crates/experiments/src/bin/fig2_next_use.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
