/root/repo/target/debug/deps/nucache_trace-93c0bbac354e8a31.d: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs

/root/repo/target/debug/deps/libnucache_trace-93c0bbac354e8a31.rlib: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs

/root/repo/target/debug/deps/libnucache_trace-93c0bbac354e8a31.rmeta: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/mix.rs crates/trace/src/spec.rs crates/trace/src/stats.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/gen.rs:
crates/trace/src/io.rs:
crates/trace/src/mix.rs:
crates/trace/src/spec.rs:
crates/trace/src/stats.rs:
crates/trace/src/workload.rs:
