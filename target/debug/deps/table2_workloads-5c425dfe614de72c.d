/root/repo/target/debug/deps/table2_workloads-5c425dfe614de72c.d: crates/experiments/src/bin/table2_workloads.rs

/root/repo/target/debug/deps/table2_workloads-5c425dfe614de72c: crates/experiments/src/bin/table2_workloads.rs

crates/experiments/src/bin/table2_workloads.rs:
