/root/repo/target/debug/deps/fig2_next_use-13a055fe2c1dc9e1.d: crates/experiments/src/bin/fig2_next_use.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_next_use-13a055fe2c1dc9e1.rmeta: crates/experiments/src/bin/fig2_next_use.rs Cargo.toml

crates/experiments/src/bin/fig2_next_use.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
