/root/repo/target/debug/deps/table4_overhead-0c05913312d51ca6.d: crates/experiments/src/bin/table4_overhead.rs

/root/repo/target/debug/deps/table4_overhead-0c05913312d51ca6: crates/experiments/src/bin/table4_overhead.rs

crates/experiments/src/bin/table4_overhead.rs:
