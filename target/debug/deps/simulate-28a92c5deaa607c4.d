/root/repo/target/debug/deps/simulate-28a92c5deaa607c4.d: crates/experiments/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-28a92c5deaa607c4: crates/experiments/src/bin/simulate.rs

crates/experiments/src/bin/simulate.rs:
