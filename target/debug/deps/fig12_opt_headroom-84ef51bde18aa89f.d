/root/repo/target/debug/deps/fig12_opt_headroom-84ef51bde18aa89f.d: crates/experiments/src/bin/fig12_opt_headroom.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_opt_headroom-84ef51bde18aa89f.rmeta: crates/experiments/src/bin/fig12_opt_headroom.rs Cargo.toml

crates/experiments/src/bin/fig12_opt_headroom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
