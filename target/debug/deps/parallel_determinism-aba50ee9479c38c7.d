/root/repo/target/debug/deps/parallel_determinism-aba50ee9479c38c7.d: crates/sim/tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-aba50ee9479c38c7.rmeta: crates/sim/tests/parallel_determinism.rs Cargo.toml

crates/sim/tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
