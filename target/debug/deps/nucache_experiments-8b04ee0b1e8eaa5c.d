/root/repo/target/debug/deps/nucache_experiments-8b04ee0b1e8eaa5c.d: crates/experiments/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_experiments-8b04ee0b1e8eaa5c.rmeta: crates/experiments/src/main.rs Cargo.toml

crates/experiments/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
