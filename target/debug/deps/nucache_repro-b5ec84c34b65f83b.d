/root/repo/target/debug/deps/nucache_repro-b5ec84c34b65f83b.d: src/lib.rs

/root/repo/target/debug/deps/nucache_repro-b5ec84c34b65f83b: src/lib.rs

src/lib.rs:
