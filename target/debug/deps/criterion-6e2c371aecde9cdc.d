/root/repo/target/debug/deps/criterion-6e2c371aecde9cdc.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6e2c371aecde9cdc.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6e2c371aecde9cdc.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
