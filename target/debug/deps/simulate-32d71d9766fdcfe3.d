/root/repo/target/debug/deps/simulate-32d71d9766fdcfe3.d: crates/experiments/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-32d71d9766fdcfe3.rmeta: crates/experiments/src/bin/simulate.rs Cargo.toml

crates/experiments/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
