/root/repo/target/debug/deps/nucache_experiments-670d1330e9f4d130.d: crates/experiments/src/lib.rs crates/experiments/src/characterize.rs crates/experiments/src/figs.rs crates/experiments/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libnucache_experiments-670d1330e9f4d130.rmeta: crates/experiments/src/lib.rs crates/experiments/src/characterize.rs crates/experiments/src/figs.rs crates/experiments/src/tables.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/characterize.rs:
crates/experiments/src/figs.rs:
crates/experiments/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
