/root/repo/target/debug/examples/custom_workload-82628abf631f404a.d: examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-82628abf631f404a: examples/custom_workload.rs

examples/custom_workload.rs:
