/root/repo/target/debug/examples/custom_workload-e007c1417bc27398.d: examples/custom_workload.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_workload-e007c1417bc27398.rmeta: examples/custom_workload.rs Cargo.toml

examples/custom_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
