/root/repo/target/debug/examples/policy_comparison-a8b03ef08d538a0c.d: examples/policy_comparison.rs

/root/repo/target/debug/examples/policy_comparison-a8b03ef08d538a0c: examples/policy_comparison.rs

examples/policy_comparison.rs:
