/root/repo/target/debug/examples/quickstart-9af0b59731e5a331.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9af0b59731e5a331: examples/quickstart.rs

examples/quickstart.rs:
