/root/repo/target/debug/examples/policy_comparison-58b28596dbaa225f.d: examples/policy_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_comparison-58b28596dbaa225f.rmeta: examples/policy_comparison.rs Cargo.toml

examples/policy_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
