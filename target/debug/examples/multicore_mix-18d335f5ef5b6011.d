/root/repo/target/debug/examples/multicore_mix-18d335f5ef5b6011.d: examples/multicore_mix.rs Cargo.toml

/root/repo/target/debug/examples/libmulticore_mix-18d335f5ef5b6011.rmeta: examples/multicore_mix.rs Cargo.toml

examples/multicore_mix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
