/root/repo/target/debug/examples/multicore_mix-6fe8950c68eec06c.d: examples/multicore_mix.rs

/root/repo/target/debug/examples/multicore_mix-6fe8950c68eec06c: examples/multicore_mix.rs

examples/multicore_mix.rs:
