//! Umbrella crate for the NUcache reproduction workspace.
//!
//! Re-exports the workspace crates under one roof so examples and
//! downstream users can depend on a single package:
//!
//! * [`common`] — addresses, PCs, histograms, counters, RNG, tables;
//! * [`trace`] — synthetic PC-attributed workload generators and mixes;
//! * [`cache`] — the set-associative substrate and replacement policies;
//! * [`partition`] — UCP, PIPP and the insertion-policy baselines;
//! * [`core`] — NUcache itself (MainWays/DeliWays, Next-Use monitor,
//!   cost-benefit PC selection);
//! * [`cpu`] — timing model and multiprogrammed metrics;
//! * [`sim`] — end-to-end multicore simulation driver.
//!
//! # Quickstart
//!
//! ```
//! use nucache_repro::sim::{Evaluator, Scheme, SimConfig};
//! use nucache_repro::trace::{Mix, SpecWorkload};
//!
//! let mut eval = Evaluator::new(SimConfig::demo());
//! let mix = Mix::new("demo", vec![SpecWorkload::HmmerLike, SpecWorkload::GobmkLike]);
//! let (_, lru) = eval.evaluate(&mix, &Scheme::Lru);
//! let (_, nuc) = eval.evaluate(&mix, &Scheme::nucache_default());
//! assert!(nuc.weighted_speedup > 0.0 && lru.weighted_speedup > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nucache_cache as cache;
pub use nucache_common as common;
pub use nucache_core as core;
pub use nucache_cpu as cpu;
pub use nucache_partition as partition;
pub use nucache_sim as sim;
pub use nucache_trace as trace;
